"""Incremental maintenance of the dual-simulation fixpoint.

The paper's fixpoint is a *greatest* fixed point, and greatest fixed
points compose block-triangularly: partition the SOI's variables into
a **cone of influence** — every variable an edge delta can possibly
re-activate — and its complement.  Out-of-cone variables, by
construction, appear as targets only of inequalities whose sources are
also out-of-cone and whose labels are untouched, so the subsystem
constraining them is *identical* before and after the delta and their
old fixpoint rows remain exact.  In-cone variables restart from the
solver's initial assignment over the *new* graph (a sound
over-approximation of the gfp) and a bounded worklist cascade — the
ordinary solver resumed from a synthetic checkpoint — converges them
back down.  The argument covers additions and retractions uniformly:
both only change the touched labels' matrices, and the cone is
computed from labels, not from the delta's direction.

Cone construction (:func:`cone_of_influence`): seed with the canonical
target of every :class:`~repro.core.soi.EdgeInequality` whose label
was touched, then close under "source in cone implies target in cone"
(:class:`~repro.core.soi.CopyInequality` has no label and participates
in the closure only).  The closure property is what keeps the cascade
inside the cone: every inequality with an in-cone source has an
in-cone target, so re-evaluations never write an out-of-cone row.

Fixpoints are cached per query (:class:`FixpointCache`) and validated
against the overlay's epoch bookkeeping
(:meth:`~repro.store.overlay.OverlayGraphView.changed_since`).  Four
modes, each counted in the metrics registry:

* ``reuse`` — nothing changed since the cached solve: resume with an
  empty worklist (the kernels close the open round immediately).
* ``cascade`` — bounded re-solve of the cone only.
* ``fallback`` — the cone's seed set exceeds
  ``fallback_fraction`` of all inequalities; a full re-solve is
  cheaper than pretending the delta is local.
* ``cold`` — no cached fixpoint, the node index space grew, or the
  cached row keys do not match this SOI's canonical roots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.bitvec import Bitset
from repro.core.checkpoint import PHASE_DYNAMIC, PHASE_STATIC, SolverCheckpoint
from repro.core.soi import SystemOfInequalities
from repro.core.solver import (
    SolverOptions,
    SolverReport,
    SolverResult,
    _initial_rows,
    solve,
)
from repro.obs.metrics import registry
from repro.obs.trace import current_tracer

__all__ = [
    "FixpointCache",
    "IncrementalSolver",
    "cone_of_influence",
    "cascade_seeds",
]

#: Fall back to a cold solve when the seed set exceeds this fraction
#: of the SOI's inequalities (see ExecutionProfile.incremental_fallback_fraction).
DEFAULT_FALLBACK_FRACTION = 0.5


def cone_of_influence(
    soi: SystemOfInequalities, changed_labels: Set[str]
) -> Set[int]:
    """Canonical variable ids a delta on ``changed_labels`` can touch.

    Seeds are the targets of edge inequalities carrying a changed
    label; the closure propagates along every inequality (copy
    inequalities included) from source to target.
    """
    cone: Set[int] = set()
    for ineq in soi.inequalities:
        label = getattr(ineq, "label", None)
        if label is not None and label in changed_labels:
            cone.add(soi.find(ineq.target))
    grew = bool(cone)
    while grew:
        grew = False
        for ineq in soi.inequalities:
            if soi.find(ineq.source) in cone:
                target = soi.find(ineq.target)
                if target not in cone:
                    cone.add(target)
                    grew = True
    return cone


def cascade_seeds(
    soi: SystemOfInequalities, cone: Set[int]
) -> List[int]:
    """Worklist indices of every inequality with an in-cone target."""
    return [
        idx
        for idx, ineq in enumerate(soi.inequalities)
        if soi.find(ineq.target) in cone
    ]


@dataclass
class CacheEntry:
    """The last complete fixpoint of one query's branches."""

    epoch: int = -1
    n_nodes: int = 0
    #: branch number -> canonical root id -> fixpoint row (private copies).
    branches: Dict[int, Dict[int, Bitset]] = field(default_factory=dict)


class FixpointCache:
    """Per-session cache of last fixpoints, keyed by query text."""

    def __init__(self):
        self._entries: Dict[str, CacheEntry] = {}

    def entry(self, query_text: str) -> CacheEntry:
        entry = self._entries.get(query_text)
        if entry is None:
            entry = CacheEntry()
            self._entries[query_text] = entry
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()


class IncrementalSolver:
    """Per-query incremental solve driver handed to the pipeline.

    One instance covers one ``prune()`` call; ``solve_branch`` replaces
    the pipeline's plain ``solve`` for each compiled branch, deciding
    reuse/cascade/fallback/cold per branch and refreshing the cache
    with the new fixpoint either way.
    """

    def __init__(
        self,
        entry: CacheEntry,
        fallback_fraction: float = DEFAULT_FALLBACK_FRACTION,
    ):
        self.entry = entry
        self.fallback_fraction = fallback_fraction
        #: Mode of the last ``solve_branch`` call (observability).
        self.last_mode: Optional[str] = None

    def solve_branch(
        self,
        number: int,
        soi: SystemOfInequalities,
        data,
        options: SolverOptions,
    ) -> SolverResult:
        entry = self.entry
        epoch = data.epoch
        mode = "cold"
        seeds: List[int] = []
        cached = entry.branches.get(number)
        changed: Optional[Set[str]] = None
        if cached is not None and entry.n_nodes == data.n_nodes:
            changed = data.changed_since(entry.epoch)
        if changed is not None:
            roots = {soi.find(root) for root in soi.roots()}
            if set(cached) != roots:
                changed = None  # query recompiled differently; resolve cold
        if changed is not None:
            if not changed:
                mode = "reuse"
            else:
                cone = cone_of_influence(soi, changed)
                seeds = cascade_seeds(soi, cone)
                bound = self.fallback_fraction * len(soi.inequalities)
                if len(seeds) > bound:
                    mode = "fallback"
                else:
                    mode = "cascade"

        tracer = current_tracer()
        if mode in ("cold", "fallback"):
            result = solve(soi, data, options)
        else:
            checkpoint = self._synthetic_checkpoint(
                soi, data, options, cached, seeds
            )
            result = solve(soi, data, options, resume=checkpoint)

        registry().counter(_MODE_COUNTERS[mode]).inc()
        if tracer.enabled:
            tracer.event(
                "incremental",
                branch=number,
                mode=mode,
                seeds=len(seeds),
                epoch=epoch,
            )
        self.last_mode = mode

        # A complete fixpoint refreshes the cache; a suspended solve
        # cannot happen here (incremental runs are unbounded), but be
        # defensive and never cache a mid-trajectory over-approximation.
        if result.complete:
            entry.branches[number] = {
                vid: row.copy() for vid, row in result._rows.items()
            }
            entry.epoch = epoch
            entry.n_nodes = data.n_nodes
        else:
            entry.branches.pop(number, None)
        return result

    def _synthetic_checkpoint(
        self,
        soi: SystemOfInequalities,
        data,
        options: SolverOptions,
        cached: Dict[int, Bitset],
        seeds: List[int],
    ) -> SolverCheckpoint:
        """A checkpoint whose rows mix the cached fixpoint (out of
        cone) with fresh initial rows over the new graph (in cone),
        and whose worklist is exactly the cascade's seed set."""
        fresh = _initial_rows(soi, data, options)
        cone = {soi.find(soi.inequalities[idx].target) for idx in seeds}
        rows = {
            vid: (fresh[vid] if vid in cone else cached[vid])
            for vid in fresh
        }
        dynamic = options.ordering == "dynamic"
        ordered = sorted(seeds)
        return SolverCheckpoint.capture(
            phase=PHASE_DYNAMIC if dynamic else PHASE_STATIC,
            n=data.n_nodes,
            rows=rows,
            report=SolverReport(),
            elapsed=0.0,
            queue=() if dynamic else ordered,
            pending=frozenset(ordered) if dynamic else frozenset(),
        )


_MODE_COUNTERS = {
    "reuse": "incremental_reuses_total",
    "cascade": "incremental_cascades_total",
    "fallback": "incremental_fallbacks_total",
    "cold": "incremental_cold_solves_total",
}
