"""Systems of inequalities (paper Sect. 3.2, Eq. (11)/(12)/(13)).

A system of inequalities ``E = (Var, Eq)`` has one variable per
pattern node (plus surrogate variables introduced by the OPTIONAL
renaming of Sect. 4.3/4.4) and, per pattern edge ``(v, a, w)``, the
two inequalities

    ``w <= v x_b F_a``   and   ``v <= w x_b B_a``.

Surrogates add *copy* inequalities ``v_Q2 <= v`` (Eq. (14)/(15)).

Variables support unification (SPARQL AND shares variables between
subqueries, Lemma 3) through an embedded union-find; consumers must
address rows via :meth:`SystemOfInequalities.find`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional

from repro.errors import SolverError
from repro.graph.graph import Graph

FORWARD = "F"
BACKWARD = "B"


@dataclass
class SOIVariable:
    """One SOI variable.

    ``origin`` ties the variable back to the query term it denotes
    (a :class:`~repro.rdf.terms.Variable` or a constant marker);
    ``constant`` pins the variable to a single database node.
    """

    vid: int
    name: str
    origin: object = None
    constant: Optional[Hashable] = None
    has_constant: bool = False


@dataclass
class EdgeInequality:
    """``target <= source x_b A`` for A in {F_a, B_a} (Eq. (11))."""

    target: int
    source: int
    label: str
    matrix: str  # FORWARD or BACKWARD


@dataclass
class CopyInequality:
    """``target <= source`` (Eq. (14)/(15)): optional surrogates."""

    target: int
    source: int


Inequality = EdgeInequality | CopyInequality


@dataclass
class SOIEdge:
    """A pattern edge retained for Eq.-(13) initialization and pruning.

    ``dual`` is True for ordinary dual simulation edges (both
    inequalities); False for plain-simulation edges (forward condition
    only, see :mod:`repro.core.plain`).
    """

    source: int
    label: str
    target: int
    dual: bool = True


class SystemOfInequalities:
    """Variables + inequalities + union-find for shared variables."""

    def __init__(self):
        self.variables: List[SOIVariable] = []
        self.inequalities: List[Inequality] = []
        self.edges: List[SOIEdge] = []
        self._parent: List[int] = []

    # -- variables ---------------------------------------------------------

    def new_variable(
        self,
        name: str,
        origin: object = None,
        constant: Optional[Hashable] = None,
        has_constant: bool = False,
    ) -> int:
        vid = len(self.variables)
        self.variables.append(
            SOIVariable(vid, name, origin, constant, has_constant)
        )
        self._parent.append(vid)
        return vid

    def new_constant(self, value: Hashable, name: Optional[str] = None) -> int:
        return self.new_variable(
            name or f"const:{value!r}", origin=None, constant=value,
            has_constant=True,
        )

    @property
    def n_variables(self) -> int:
        return len(self.variables)

    def variable(self, vid: int) -> SOIVariable:
        return self.variables[vid]

    # -- union-find (Lemma 3 unification) -------------------------------------

    def find(self, vid: int) -> int:
        root = vid
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[vid] != root:  # path compression
            self._parent[vid], vid = root, self._parent[vid]
        return root

    def union(self, a: int, b: int) -> int:
        """Unify two variables; returns the surviving root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        # Keep the lower id as root for determinism; merge constants.
        root, child = (ra, rb) if ra < rb else (rb, ra)
        self._parent[child] = root
        root_var = self.variables[root]
        child_var = self.variables[child]
        if child_var.has_constant:
            if root_var.has_constant and root_var.constant != child_var.constant:
                raise SolverError(
                    "cannot unify distinct constants "
                    f"{root_var.constant!r} and {child_var.constant!r}"
                )
            root_var.constant = child_var.constant
            root_var.has_constant = True
        return root

    def roots(self) -> List[int]:
        """All canonical variable ids."""
        return sorted({self.find(v.vid) for v in self.variables})

    # -- constraints -----------------------------------------------------------

    def add_edge_constraint(
        self, source: int, label: str, target: int, dual: bool = True
    ) -> None:
        """Add the inequalities of pattern edge (source, label, target).

        With ``dual=True`` (the default) both Eq.-(11) inequalities are
        added; with ``dual=False`` only the backward-matrix inequality
        ``source <= target x_b B_a`` (plain simulation: candidates of
        the source must have a matching successor, nothing is required
        of the target's predecessors).
        """
        if not isinstance(label, Hashable):
            raise SolverError(f"unusable edge label: {label!r}")
        if dual:
            self.inequalities.append(
                EdgeInequality(target=target, source=source, label=label,
                               matrix=FORWARD)
            )
        self.inequalities.append(
            EdgeInequality(target=source, source=target, label=label,
                           matrix=BACKWARD)
        )
        self.edges.append(
            SOIEdge(source=source, label=label, target=target, dual=dual)
        )

    def add_copy_constraint(self, target: int, source: int) -> None:
        self.inequalities.append(CopyInequality(target=target, source=source))

    # -- construction from a pattern graph ------------------------------------

    @classmethod
    def from_pattern_graph(cls, pattern: Graph) -> "SystemOfInequalities":
        """SOI of a plain pattern graph: Var := V1, Eq per Eq. (11)."""
        soi = cls()
        index: Dict[Hashable, int] = {}
        for node in pattern.nodes():
            index[node] = soi.new_variable(str(node), origin=node)
        for src, label, dst in pattern.edges():
            soi.add_edge_constraint(index[src], label, index[dst])
        return soi

    # -- introspection ------------------------------------------------------------

    def variable_by_origin(self, origin: object) -> Optional[int]:
        """Canonical vid of the (first) variable with the given origin."""
        for var in self.variables:
            if var.origin == origin:
                return self.find(var.vid)
        return None

    def describe(self) -> str:
        """Human-readable rendering (mirrors Fig. 3 of the paper)."""
        lines = []
        for ineq in self.inequalities:
            target = self.variables[self.find(ineq.target)].name
            source = self.variables[self.find(ineq.source)].name
            if isinstance(ineq, EdgeInequality):
                matrix = "F" if ineq.matrix == FORWARD else "B"
                lines.append(f"{target} <= {source} x {matrix}[{ineq.label}]")
            else:
                lines.append(f"{target} <= {source}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"SystemOfInequalities(vars={self.n_variables}, "
            f"inequalities={len(self.inequalities)}, edges={len(self.edges)})"
        )
