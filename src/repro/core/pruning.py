"""Per-query database pruning via dual simulation (paper Sect. 5).

After solving the SOI of a query, a database triple ``(o, a, o')`` is
*retained* iff some SOI edge ``(v, a, w)`` has ``o`` in the solution
row of ``v`` and ``o'`` in the row of ``w``.  Theorem 2 guarantees
that every triple participating in any SPARQL match is retained, so
evaluating the query on the pruned database loses nothing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Set, Tuple

from repro.core.compiler import CompiledQuery
from repro.core.solver import SolverResult
from repro.graph.database import GraphDatabase
from repro.graph.graph import Graph
from repro.store.triple_store import TripleStore

IndexedTriple = Tuple[int, str, int]  # data-graph node indices + label


@dataclass
class PruneResult:
    """Triples retained by dual simulation pruning."""

    data: Graph
    triples: Set[IndexedTriple]
    n_triples_before: int
    elapsed: float

    @property
    def n_triples_after(self) -> int:
        return len(self.triples)

    @property
    def pruned_fraction(self) -> float:
        """Fraction of the database disqualified (Table 3's >=95%)."""
        if self.n_triples_before == 0:
            return 0.0
        return 1.0 - self.n_triples_after / self.n_triples_before

    def name_triples(self) -> List[Tuple]:
        data = self.data
        return [
            (data.node_name(s), label, data.node_name(o))
            for s, label, o in self.triples
        ]

    def to_graph_database(self) -> GraphDatabase:
        db = GraphDatabase()
        for s, p, o in self.name_triples():
            db.add_triple(s, p, o)
        return db

    def to_store(self) -> TripleStore:
        return TripleStore.from_triples(self.name_triples())


def retained_triples(result: SolverResult) -> Set[IndexedTriple]:
    """Triples kept by one solved SOI (one union-free branch)."""
    soi = result.soi
    data = result.data
    matrices = data.matrices()
    kept: Set[IndexedTriple] = set()
    for edge in soi.edges:
        pair = matrices.get(edge.label)
        if pair is None:
            continue
        source_row = result.row(edge.source)
        target_row = result.row(edge.target)
        if source_row.is_empty() or target_row.is_empty():
            continue
        # Iterate whichever side is smaller against the adjacency.
        if source_row.count() <= target_row.count():
            active = source_row & pair.forward.summary
            for i in active.iter_ones():
                matched = pair.forward.rows[int(i)] & target_row
                for j in matched.iter_ones():
                    kept.add((int(i), edge.label, int(j)))
        else:
            active = target_row & pair.backward.summary
            for j in active.iter_ones():
                matched = pair.backward.rows[int(j)] & source_row
                for i in matched.iter_ones():
                    kept.add((int(i), edge.label, int(j)))
    return kept


def prune(
    data: Graph, results: SolverResult | Iterable[SolverResult]
) -> PruneResult:
    """Prune ``data`` by one or more solved SOIs (several for UNION
    queries — the union of the branch prunings, Prop. 3)."""
    start = time.perf_counter()
    if isinstance(results, SolverResult):
        results = [results]
    kept: Set[IndexedTriple] = set()
    for result in results:
        if result.data is not data:
            raise ValueError("solver result belongs to a different data graph")
        kept |= retained_triples(result)
    elapsed = time.perf_counter() - start
    return PruneResult(
        data=data,
        triples=kept,
        n_triples_before=data.n_edges,
        elapsed=elapsed,
    )


def required_triples_of_compiled(
    compiled: CompiledQuery, result: SolverResult
) -> Set[IndexedTriple]:
    """Alias of :func:`retained_triples` scoped to one compiled query
    (kept for API symmetry with the pipeline)."""
    del compiled
    return retained_triples(result)
