"""Plain (forward) graph simulation, for comparison with dual
simulation.

The related work the paper positions against (e.g. Panda [31]) prunes
with *subgraph simulation*, which only constrains outgoing edges
(Def. 2(i) without 2(ii)).  The paper argues dual simulation prunes
more effectively; this module provides plain simulation — both a
set-based reference and an SOI-based solver variant — so that the
claim is measurable (see ``benchmarks/test_ablation_dual_vs_plain``).

SOI encoding: a pattern edge ``(v, a, w)`` contributes only
``v <= w x_b B_a`` — every candidate of ``v`` must have an
``a``-successor among the candidates of ``w``; the dual inequality
``w <= v x_b F_a`` is exactly what plain simulation omits.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Set

from repro.core.simulation import Relation
from repro.core.soi import SystemOfInequalities
from repro.core.solver import SolverOptions, SolverResult, solve
from repro.graph.graph import Graph


def is_simulation(pattern: Graph, data: Graph, relation: Relation) -> bool:
    """Check the plain simulation condition (Def. 2(i) only)."""
    for v1, candidates in relation.items():
        if not pattern.has_node(v1):
            return False
        for v2 in candidates:
            if not data.has_node(v2):
                return False
            for label, w1 in pattern.out_edges(v1):
                if not (data.successors(v2, label) & relation.get(w1, set())):
                    return False
    return True


def largest_simulation_reference(pattern: Graph, data: Graph) -> Relation:
    """Set-based reference fixpoint for the largest plain simulation."""
    current: Dict[Hashable, Set[Hashable]] = {
        node: set(data.nodes()) for node in pattern.nodes()
    }
    changed = True
    while changed:
        changed = False
        for v1 in pattern.nodes():
            survivors = set()
            for v2 in current[v1]:
                ok = True
                for label, w1 in pattern.out_edges(v1):
                    if not (data.successors(v2, label) & current[w1]):
                        ok = False
                        break
                if ok:
                    survivors.add(v2)
            if survivors != current[v1]:
                current[v1] = survivors
                changed = True
    return current


def simulation_soi(pattern: Graph) -> SystemOfInequalities:
    """The forward-only SOI of a pattern graph."""
    soi = SystemOfInequalities()
    index: Dict[Hashable, int] = {}
    for node in pattern.nodes():
        index[node] = soi.new_variable(str(node), origin=node)
    for src, label, dst in pattern.edges():
        soi.add_edge_constraint(index[src], label, index[dst], dual=False)
    return soi


def largest_simulation(
    pattern: Graph,
    data: Graph,
    options: Optional[SolverOptions] = None,
) -> SolverResult:
    """Largest plain simulation via the SOI solver."""
    return solve(simulation_soi(pattern), data, options)
