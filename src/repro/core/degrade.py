"""Graceful kernel degradation: batched → packed → reference.

The three solver kernels are proven bit-identical, so a fault inside
an optimized kernel (a NumPy dtype surprise on an exotic platform, a
corrupted packed block, a bug tripped by an unusual shape) never has
to kill the query — the same solve can rerun one tier down and
produce the *same* answer, just slower.

:func:`repro.core.solver.solve` consults
``SolverOptions.degrade_on_fault``: typed repro errors (including
:class:`~repro.errors.DeadlineExceededError`) always propagate — they
are answers, not faults — but any other exception from a degradable
kernel triggers a retry on the next tier, recorded here as a
:class:`DegradationEvent`.  The core default is **off** (the
kernel-equivalence property suites must see real failures, not silent
fallbacks); the :class:`~repro.api.profile.ExecutionProfile` façade
turns it on for end-user sessions.

Events are collected per registered sink (the
:class:`~repro.api.database.Database` installs one around each
operation so degradations surface in ``stats()``), plus a bounded
process-wide tail for ad-hoc inspection.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

from repro.obs.logs import get_logger
from repro.obs.metrics import registry
from repro.obs.trace import current_tracer

logger = get_logger("core.degrade")

#: Fallback order: index i degrades to index i+1.
DEGRADATION_CHAIN: Tuple[str, ...] = ("batched", "packed", "reference")

#: Process-wide tail of recent events (newest last), bounded.
_RECENT_LIMIT = 64
_recent: List["DegradationEvent"] = []
_sinks: List[Callable[["DegradationEvent"], None]] = []


@dataclass(frozen=True)
class DegradationEvent:
    """One kernel fallback that actually happened."""

    from_kernel: str
    to_kernel: str
    error_type: str
    error: str
    timestamp: float = field(default_factory=time.time)

    def to_dict(self) -> dict:
        return {
            "from_kernel": self.from_kernel,
            "to_kernel": self.to_kernel,
            "error_type": self.error_type,
            "error": self.error,
        }


def next_kernel(kernel: str) -> Optional[str]:
    """The tier below ``kernel``, or None at the bottom of the chain."""
    try:
        position = DEGRADATION_CHAIN.index(kernel)
    except ValueError:
        return None
    if position + 1 >= len(DEGRADATION_CHAIN):
        return None
    return DEGRADATION_CHAIN[position + 1]


def record(from_kernel: str, to_kernel: str, error: BaseException) -> DegradationEvent:
    """Register one fallback with every active sink."""
    event = DegradationEvent(
        from_kernel=from_kernel,
        to_kernel=to_kernel,
        error_type=type(error).__name__,
        error=str(error),
    )
    _recent.append(event)
    del _recent[:-_RECENT_LIMIT]
    registry().counter("kernel_degradations_total").inc()
    tracer = current_tracer()
    if tracer.enabled:
        tracer.event(
            "degrade",
            from_kernel=from_kernel,
            to_kernel=to_kernel,
            error_type=event.error_type,
        )
    logger.warning(
        "kernel degradation: %s -> %s after %s: %s",
        from_kernel, to_kernel, event.error_type, event.error,
    )
    for sink in _sinks:
        sink(event)
    return event


def recent_events() -> List[DegradationEvent]:
    """Process-wide tail of recent degradations (newest last)."""
    return list(_recent)


def clear_recent() -> None:
    _recent.clear()


@contextmanager
def capture_events(into: List[DegradationEvent]) -> Iterator[List[DegradationEvent]]:
    """Collect every degradation recorded inside the block."""
    sink = into.append
    _sinks.append(sink)
    try:
        yield into
    finally:
        _sinks.remove(sink)
