"""SPARQL -> SOI compilation (paper Sect. 4).

Per construct:

* **BGP** (Sect. 4.1) — one SOI variable per query variable, one per
  distinct constant, two edge inequalities per triple pattern
  (Theorem 1 gives soundness).
* **AND** (Lemmas 3/5) — shared *mandatory* variables are unified;
  a variable mandatory on one side but optional on the other keeps
  separate surrogates with copy inequalities ``v' <= v`` toward the
  mandatory occurrence (the (X3) treatment of non-well-designed
  patterns).
* **OPTIONAL** (Lemma 4 + Sect. 4.4) — variables of the optional
  side with a mandatory occurrence on the left are renamed to fresh
  surrogates ``v_Q2`` with ``v_Q2 <= v``; optional-only occurrences on
  both sides are renamed apart with no interdependency (the
  syntactically-closest rule falls out of compiling bottom-up:
  nested optionals chain ``z_R3 <= z_R2 <= z``).
* **FILTER** — ignored (dropping a filter only enlarges the
  overapproximation; sound).
* **UNION** — must be normalized away first (Prop. 3); use
  :func:`compile_query` which handles normalization and returns one
  compiled branch per union-free query.

Constants (Sect. 4.5) become SOI variables pinned to a singleton
initial vector, and participate in the renaming machinery like
variables (so a constant constrained only inside an OPTIONAL cannot
unsoundly erase mandatory matches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Union as TUnion

from repro.errors import QueryError
from repro.graph.graph import Graph
from repro.rdf.terms import Variable
from repro.sparql.ast import (
    BGP,
    Filter,
    GraphPattern,
    Join,
    LeftJoin,
    SelectQuery,
    Union,
)
from repro.sparql.normalize import flatten, merge_bgps, to_union_free
from repro.sparql.parser import parse_query
from repro.core.soi import SystemOfInequalities


class ConstKey:
    """Identity key of a constant term inside the compiler."""

    __slots__ = ("value",)

    def __init__(self, value: Hashable):
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ConstKey) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("ConstKey", self.value))

    def __repr__(self) -> str:
        return f"ConstKey({self.value!r})"


TermKey = TUnion[Variable, ConstKey]


@dataclass
class Fragment:
    """Mandatory and optional variable occurrences of a sub-query.

    ``anchored`` records surrogate vids that already received their
    copy inequality toward the *syntactically closest* mandatory
    occurrence (Sect. 4.4); enclosing operators must not re-anchor
    them (``z_R3 <= z_R2 <= z`` — no direct ``z_R3 <= z``).
    """

    mand: Dict[TermKey, int] = field(default_factory=dict)
    opt: Dict[TermKey, List[int]] = field(default_factory=dict)
    anchored: Set[int] = field(default_factory=set)

    def all_keys(self) -> Set[TermKey]:
        return set(self.mand) | set(self.opt)


class CompiledQuery:
    """A union-free query compiled to an SOI, with variable maps."""

    def __init__(self, pattern: GraphPattern, soi: SystemOfInequalities,
                 fragment: Fragment):
        self.pattern = pattern
        self.soi = soi
        self.fragment = fragment

    def mandatory_vid(self, variable: Variable) -> Optional[int]:
        vid = self.fragment.mand.get(variable)
        return self.soi.find(vid) if vid is not None else None

    def all_vids(self, variable: Variable) -> List[int]:
        """Every SOI variable denoting ``variable`` (canonicalized)."""
        vids: List[int] = []
        mand = self.fragment.mand.get(variable)
        if mand is not None:
            vids.append(self.soi.find(mand))
        for vid in self.fragment.opt.get(variable, ()):  # surrogates
            canonical = self.soi.find(vid)
            if canonical not in vids:
                vids.append(canonical)
        return vids

    def variables(self) -> Set[Variable]:
        return {
            key
            for key in self.fragment.all_keys()
            if isinstance(key, Variable)
        }


def _term_key(term) -> TermKey:
    if isinstance(term, Variable):
        return term
    return ConstKey(term)


def _compile_bgp(soi: SystemOfInequalities, bgp: BGP) -> Fragment:
    mapping: Dict[TermKey, int] = {}
    for triple in bgp.triples:
        if isinstance(triple.predicate, Variable):
            raise QueryError(
                "variable predicates are not supported by dual simulation "
                f"pruning: {triple!r}"
            )
        for term in (triple.subject, triple.object):
            key = _term_key(term)
            if key not in mapping:
                if isinstance(term, Variable):
                    mapping[key] = soi.new_variable(str(term), origin=term)
                else:
                    mapping[key] = soi.new_constant(term)
    for triple in bgp.triples:
        soi.add_edge_constraint(
            mapping[_term_key(triple.subject)],
            triple.predicate,
            mapping[_term_key(triple.object)],
        )
    return Fragment(mand=mapping, opt={})


def _compile_join(
    soi: SystemOfInequalities, left: Fragment, right: Fragment
) -> Fragment:
    mand = dict(left.mand)
    opt = {key: list(vids) for key, vids in left.opt.items()}
    anchored = set(left.anchored) | set(right.anchored)

    def anchor(surrogate: int, mandatory: int) -> None:
        if surrogate not in anchored:
            soi.add_copy_constraint(surrogate, mandatory)
            anchored.add(surrogate)

    for key, vid in right.mand.items():
        if key in mand:
            soi.union(mand[key], vid)  # Lemma 3: shared mandatory unify
        else:
            if key in opt:
                # Optional on the left, mandatory on the right: the
                # left surrogates become dependent (Lemma 5 / (X3)).
                for surrogate in opt[key]:
                    anchor(surrogate, vid)
            mand[key] = vid

    for key, vids in right.opt.items():
        if key in mand:
            for surrogate in vids:
                anchor(surrogate, mand[key])
        opt.setdefault(key, []).extend(vids)
    return Fragment(mand=mand, opt=opt, anchored=anchored)


def _compile_left_join(
    soi: SystemOfInequalities, left: Fragment, right: Fragment
) -> Fragment:
    mand = dict(left.mand)
    opt = {key: list(vids) for key, vids in left.opt.items()}
    anchored = set(left.anchored) | set(right.anchored)

    def anchor(surrogate: int, mandatory: int) -> None:
        if surrogate not in anchored:
            soi.add_copy_constraint(surrogate, mandatory)
            anchored.add(surrogate)

    for key, vid in right.mand.items():
        if key in left.mand:
            # Lemma 4: rename + v_Q2 <= v toward the mandatory side.
            anchor(vid, left.mand[key])
        # Optional-only on the left: renamed apart, no interdependency
        # (Sect. 4.4, the x in P2/P3 example).
        opt.setdefault(key, []).append(vid)

    for key, vids in right.opt.items():
        if key in left.mand:
            # Only surrogates without a closer mandatory occurrence
            # inside the right operand get anchored here.
            for surrogate in vids:
                anchor(surrogate, left.mand[key])
        opt.setdefault(key, []).extend(vids)
    return Fragment(mand=mand, opt=opt, anchored=anchored)


def _compile(soi: SystemOfInequalities, pattern: GraphPattern) -> Fragment:
    if isinstance(pattern, BGP):
        return _compile_bgp(soi, pattern)
    if isinstance(pattern, Join):
        left = _compile(soi, pattern.left)
        right = _compile(soi, pattern.right)
        return _compile_join(soi, left, right)
    if isinstance(pattern, LeftJoin):
        left = _compile(soi, pattern.left)
        right = _compile(soi, pattern.right)
        return _compile_left_join(soi, left, right)
    if isinstance(pattern, Filter):
        return _compile(soi, pattern.pattern)  # sound to ignore
    if isinstance(pattern, Union):
        raise QueryError(
            "UNION must be normalized away before compilation; "
            "use compile_query()"
        )
    raise QueryError(f"unknown pattern node: {pattern!r}")


def compile_pattern(pattern: GraphPattern) -> CompiledQuery:
    """Compile one union-free graph pattern to an SOI."""
    soi = SystemOfInequalities()
    fragment = _compile(soi, pattern)
    return CompiledQuery(pattern, soi, fragment)


def compile_query(
    query: SelectQuery | GraphPattern | str,
) -> List[CompiledQuery]:
    """Compile a query (text, SELECT AST, or bare pattern) into one
    :class:`CompiledQuery` per union-free branch (Prop. 3)."""
    if isinstance(query, str):
        query = parse_query(query)
    pattern = query.pattern if isinstance(query, SelectQuery) else query
    branches = to_union_free(merge_bgps(flatten(pattern)))
    return [compile_pattern(branch) for branch in branches]


def pattern_to_graph(bgp: BGP) -> Graph:
    """The graph representation ``G(G)`` of a BGP (Sect. 4.1).

    Variables and constants alike become nodes named by their term.
    """
    graph = Graph()
    for triple in bgp.triples:
        if isinstance(triple.predicate, Variable):
            raise QueryError("variable predicates have no graph representation")
        graph.add_edge(triple.subject, triple.predicate, triple.object)
    return graph
