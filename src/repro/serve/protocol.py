"""The ``repro serve`` JSON wire protocol.

One protocol version (:data:`WIRE_PROTOCOL`), shared by the server
(:mod:`repro.serve.server`) and the client
(:mod:`repro.serve.client`).  Everything on the wire is JSON; this
module is the single place that knows how result values, prune
summaries, and errors are shaped.

Value encoding
--------------

Decoded solution values are node names (plain JSON scalars pass
through untouched) or :class:`~repro.graph.database.Literal` wrappers.
Literals travel as a one-key tagged object so the object and literal
universes stay disjoint across the wire, exactly as they are in
memory::

    "Turing"                    # node name
    {"@literal": "1912-06-23"}  # Literal("1912-06-23")

A node name that is not JSON-representable (an exotic hashable) is a
server-side error — the reproduction's workloads use strings and
literal-wrapped scalars only.

Error bodies
------------

Every non-2xx response carries a typed JSON error body::

    {"error": {"code": "stale_token", "message": "..."}}

with a distinct HTTP status per code (:data:`ERROR_STATUS`), so
clients can branch on ``code`` without parsing prose: a corrupt
continuation token is a 400, a stale one (snapshot or query changed
under it) a 409, a blown ``deadline_ms`` a 408.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.api.result import PruneSummary
from repro.errors import ReproError
from repro.graph.database import Literal

#: Protocol identifier, embedded in ``GET /info`` and checked by the
#: client on connect.
WIRE_PROTOCOL = "repro-serve/v1"

#: Typed error code -> HTTP status.
ERROR_STATUS: Dict[str, int] = {
    "bad_request": 400,       # malformed JSON, missing/unknown fields
    "corrupt_token": 400,     # continuation token fails CRC/structure
    "deadline_exceeded": 408, # per-request deadline_ms elapsed
    "stale_token": 409,       # token bound to a different session
    "body_too_large": 413,    # request body over --max-body
    "invalid_query": 422,     # SPARQL parse/semantic error
    "not_found": 404,
    "method_not_allowed": 405,
    "unsupported_operation": 405,  # backend lacks the capability (e.g. writes)
    "internal": 500,
    "shutting_down": 503,     # SIGTERM drain in progress
}


class ProtocolError(ReproError):
    """A message violated the ``repro-serve/v1`` wire protocol."""


def encode_value(value: Hashable) -> object:
    """One solution value -> its JSON form."""
    if isinstance(value, Literal):
        inner = value.value
        if not isinstance(inner, (str, int, float, bool, type(None))):
            raise ProtocolError(
                f"literal value {inner!r} is not JSON-representable"
            )
        return {"@literal": inner}
    if isinstance(value, (str, int, float, bool, type(None))):
        return value
    raise ProtocolError(
        f"node name {value!r} is not JSON-representable"
    )


def decode_value(value: object) -> Hashable:
    """JSON form -> the in-memory solution value."""
    if isinstance(value, dict):
        if set(value) == {"@literal"}:
            return Literal(value["@literal"])
        raise ProtocolError(
            f"unknown tagged value {sorted(value)!r} on the wire"
        )
    if isinstance(value, list):
        raise ProtocolError("arrays are not valid solution values")
    return value


def encode_rows(rows: List[Dict[str, Hashable]]) -> List[Dict[str, object]]:
    return [
        {name: encode_value(value) for name, value in row.items()}
        for row in rows
    ]


def decode_rows(rows: List[Dict[str, object]]) -> List[Dict[str, Hashable]]:
    return [
        {name: decode_value(value) for name, value in row.items()}
        for row in rows
    ]


def encode_pruning(summary: Optional[PruneSummary]) -> Optional[Dict]:
    if summary is None:
        return None
    return {
        "triples_total": summary.triples_total,
        "triples_after": summary.triples_after,
        "rounds": summary.rounds,
        "t_simulation": summary.t_simulation,
    }


def decode_pruning(doc: Optional[Dict]) -> Optional[PruneSummary]:
    if doc is None:
        return None
    try:
        return PruneSummary(
            triples_total=int(doc["triples_total"]),
            triples_after=int(doc["triples_after"]),
            rounds=int(doc["rounds"]),
            t_simulation=float(doc["t_simulation"]),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(
            f"malformed pruning summary on the wire: {error}"
        ) from None


def error_body(code: str, message: str) -> Tuple[int, Dict]:
    """(HTTP status, JSON body) of one typed error."""
    status = ERROR_STATUS.get(code, 500)
    return status, {"error": {"code": code, "message": message}}
