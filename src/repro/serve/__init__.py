"""``repro serve`` — preemption-fair HTTP query serving.

A zero-dependency (stdlib-only) HTTP server that exposes one shared
:class:`~repro.api.database.Database` session over a JSON wire
protocol, and a :class:`RemoteBackend` client that plugs back into
``Database`` so local query code runs unchanged against a remote
snapshot.

Fairness is by construction, SaGe-style: every ``POST /query`` runs
under the server's ``time_quantum_ms``; a query that exceeds it is
suspended into a continuation token and answered with HTTP 206, and
the client re-submits the token for the next slice.  A strict-FIFO
gate around the shared session turns that re-submission loop into
round-robin scheduling across concurrent clients — no query can hold
the engine for more than one quantum at a time.
"""

from repro.serve.client import RemoteBackend, RemoteResultSet
from repro.serve.protocol import (
    ERROR_STATUS,
    WIRE_PROTOCOL,
    ProtocolError,
    decode_rows,
    encode_rows,
    error_body,
)
from repro.serve.server import (
    DEFAULT_MAX_BODY,
    DEFAULT_QUANTUM_MS,
    FifoGate,
    ReproServer,
    ServeConfig,
)

__all__ = [
    "DEFAULT_MAX_BODY",
    "DEFAULT_QUANTUM_MS",
    "ERROR_STATUS",
    "FifoGate",
    "ProtocolError",
    "RemoteBackend",
    "RemoteResultSet",
    "ReproServer",
    "ServeConfig",
    "WIRE_PROTOCOL",
    "decode_rows",
    "encode_rows",
    "error_body",
]
