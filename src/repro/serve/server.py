"""``repro serve`` — a preemption-fair HTTP query server.

One process, one shared :class:`~repro.api.database.Database` session,
many concurrent clients.  The zero-dependency stdlib stack
(:class:`http.server.ThreadingHTTPServer` + the JSON wire protocol of
:mod:`repro.serve.protocol`) exposes:

* ``POST /query`` — evaluate a SELECT query *or* resume a
  continuation.  Every execution slice runs under the server's
  ``time_quantum_ms``; a query that outlives its quantum comes back
  as **HTTP 206** with a continuation token, and the client
  re-submits it to proceed.
* ``POST /ask`` — ASK semantics (dual-simulation fast path).
* ``GET /info`` — protocol version, backend identity, server config.
* ``GET /metrics`` — the process-wide metrics registry snapshot.
* ``GET /health`` — 200 while serving, 503 once draining.

**Fairness by construction** (the SaGe web-preemption model, Minier
et al., WWW'19): the engine is single-threaded by contract, so every
execution slice passes through a strict FIFO gate — one quantum of
work per acquisition, re-submissions join the back of the line.  With
N concurrent clients, no query can hold the engine longer than one
quantum before every other waiting request gets its turn; long
queries make progress in round-robin slices instead of starving short
ones.

Each request increments ``server_requests_total``, records its
wall-clock in the ``server_request_latency_ms`` histogram, and counts
suspensions/resumes/errors — the PR 7 observability layer aggregated
across clients, snapshotable at ``GET /metrics``.  With a configured
``trace_out``, every request appends its span tree (gate wait,
execution slice, nested engine spans) as OTel JSONL.

Graceful drain: SIGTERM (wired by the CLI) flips ``/health`` to 503,
rejects new queries with ``shutting_down``, stops accepting
connections, and waits for in-flight requests to finish before the
process exits.
"""

from __future__ import annotations

import collections
import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.api.database import Database
from repro.api.profile import PRUNING_MODES
from repro.errors import (
    ContinuationError,
    DeadlineExceededError,
    ParseError,
    QueryError,
    ReproError,
    UnsupportedOperationError,
)
from repro.obs.logs import get_logger
from repro.obs.metrics import registry
from repro.obs.trace import Tracer, activate
from repro.serve.protocol import (
    WIRE_PROTOCOL,
    encode_pruning,
    encode_rows,
    error_body,
)

__all__ = ["ServeConfig", "ReproServer", "FifoGate"]

_LOG = get_logger("serve")

#: Default execution quantum per slice, milliseconds.
DEFAULT_QUANTUM_MS = 100.0

#: Default request-body ceiling, bytes (queries are text; anything
#: bigger than 1 MiB is a client bug or abuse).
DEFAULT_MAX_BODY = 1 << 20


@dataclass(frozen=True)
class ServeConfig:
    """Server-side execution policy (the client has no say in it)."""

    host: str = "127.0.0.1"
    port: int = 8080
    quantum_ms: float = DEFAULT_QUANTUM_MS
    deadline_ms: Optional[float] = None   # server-wide hard cap
    max_body_bytes: int = DEFAULT_MAX_BODY
    trace_out: Optional[str] = None       # append OTel JSONL per request
    drain_timeout_s: float = 10.0


class FifoGate:
    """Strict first-in-first-out mutual exclusion.

    ``threading.Lock`` makes no fairness promise; this gate does —
    waiters are woken in arrival order, and release hands the gate
    directly to the head waiter.  That ordering *is* the round-robin
    schedule: each HTTP request holds the gate for at most one
    execution quantum, and a resumed query's next slice queues behind
    every request that arrived while it ran.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._waiters: collections.deque = collections.deque()
        self._busy = False

    def acquire(self) -> None:
        with self._lock:
            if not self._busy:
                self._busy = True
                return
            ticket = threading.Event()
            self._waiters.append(ticket)
        ticket.wait()

    def release(self) -> None:
        with self._lock:
            if self._waiters:
                # Hand-off: the gate stays busy, the head waiter runs.
                self._waiters.popleft().set()
            else:
                self._busy = False

    def __enter__(self) -> "FifoGate":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class ReproServer:
    """The serving loop around one shared :class:`Database` session.

    ``db``'s profile is re-armed with the server's ``quantum_ms`` and
    ``deadline_ms``; whatever quantum the caller's profile carried is
    replaced — preemption policy belongs to the server, not to
    clients.
    """

    def __init__(self, db: Database, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.db = db
        db.profile = db.profile.replace(
            time_quantum_ms=self.config.quantum_ms,
            deadline_ms=self.config.deadline_ms,
        )
        self.gate = FifoGate()
        self._draining = False
        self._inflight = 0
        self._idle = threading.Condition()
        self._trace_lock = threading.Lock()
        self._stop_lock = threading.Lock()
        self._stopped = False
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), _Handler
        )
        self._httpd.app = self  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def draining(self) -> bool:
        return self._draining

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`stop` (or SIGTERM via
        the CLI) shuts the accept loop down."""
        _LOG.info(
            "serving %s on %s (quantum %.6gms)",
            self.db.backend.kind, self.url, self.config.quantum_ms,
        )
        self._httpd.serve_forever(poll_interval=0.05)

    def start(self) -> "ReproServer":
        """Serve on a background thread (tests, embedding)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def begin_drain(self) -> None:
        """Flip to draining: health 503, new queries rejected."""
        self._draining = True

    def stop(self, graceful: bool = True) -> None:
        """Stop accepting, optionally drain in-flight requests.

        Graceful shutdown (the SIGTERM path): mark draining so
        load-balancer health checks and new queries turn away, close
        the accept loop, then wait up to ``drain_timeout_s`` for
        requests already executing to write their responses.
        """
        with self._stop_lock:
            if self._stopped:
                return
            self._stopped = True
        self.begin_drain()
        self._httpd.shutdown()
        if graceful:
            deadline = time.monotonic() + self.config.drain_timeout_s
            with self._idle:
                while self._inflight > 0:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        _LOG.warning(
                            "drain timeout with %d request(s) in "
                            "flight", self._inflight,
                        )
                        break
                    self._idle.wait(remaining)
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=self.config.drain_timeout_s)
            self._thread = None
        _LOG.info("server stopped (drained: %s)", graceful)

    # -- request accounting ------------------------------------------------

    def _enter_request(self) -> None:
        with self._idle:
            self._inflight += 1

    def _exit_request(self) -> None:
        with self._idle:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.notify_all()

    def _write_trace(self, tracer: Tracer) -> None:
        if self.config.trace_out is None:
            return
        payload = tracer.to_jsonl()
        with self._trace_lock:
            with open(self.config.trace_out, "a") as sink:
                sink.write(payload)

    # -- endpoint bodies ---------------------------------------------------

    def info_doc(self) -> Dict[str, object]:
        backend = self.db.backend
        return {
            "protocol": WIRE_PROTOCOL,
            "kind": backend.kind,
            "n_nodes": backend.n_nodes,
            "n_triples": backend.n_triples,
            "labels": sorted(backend.labels),
            "engine": self.db.profile.engine,
            "default_mode": self.db.profile.pruning,
            "quantum_ms": self.config.quantum_ms,
            "deadline_ms": self.config.deadline_ms,
            "stats": backend.stats(),
        }

    def execute_query(self, payload: Dict) -> Tuple[int, Dict]:
        """One execution slice; (status, body) per the wire protocol."""
        session = self._session_for(payload)
        token = payload.get("continuation")
        if token is not None:
            registry().counter("server_resumes_total").inc()
            with self.gate:
                result = session.resume(token)
        else:
            mode = payload.get("mode") or None
            with self.gate:
                result = session.query(payload["query"], mode=mode)
        if not result.complete:
            registry().counter("server_suspensions_total").inc()
            return 206, {
                "protocol": WIRE_PROTOCOL,
                "complete": False,
                "mode": result.mode,
                "advised": result.advised,
                "continuation": result.continuation,
            }
        return 200, {
            "protocol": WIRE_PROTOCOL,
            "complete": True,
            "mode": result.mode,
            "advised": result.advised,
            "variables": list(result.variables),
            "rows": encode_rows(result.rows()),
            "pruning": encode_pruning(result.pruning),
        }

    def execute_ask(self, payload: Dict) -> Tuple[int, Dict]:
        session = self._session_for(payload)
        with self.gate:
            answer = session.ask(payload["query"])
        return 200, {"protocol": WIRE_PROTOCOL, "answer": bool(answer)}

    def _session_for(self, payload: Dict) -> Database:
        """The shared session — or a per-request view of it when the
        request carries its own (tighter) ``deadline_ms``.

        The view shares the backend and the prepared pipeline (join
        store, engine, statistics), so it costs one small object, not
        a cold open."""
        deadline = payload.get("deadline_ms")
        if deadline is None:
            return self.db
        cap = self.config.deadline_ms
        if cap is not None:
            deadline = min(float(deadline), cap)
        session = Database(
            self.db.backend,
            self.db.profile.replace(deadline_ms=float(deadline)),
        )
        session._pipeline = self.db._pipeline_for()
        session._advisor = self.db._advisor
        return session


def _validate_query_payload(payload: object) -> Optional[str]:
    """None when valid, else a bad_request message."""
    if not isinstance(payload, dict):
        return "request body must be a JSON object"
    query = payload.get("query")
    token = payload.get("continuation")
    if (query is None) == (token is None):
        return "exactly one of 'query' or 'continuation' is required"
    if query is not None and not isinstance(query, str):
        return "'query' must be SPARQL text"
    if token is not None and not isinstance(token, str):
        return "'continuation' must be a token string"
    mode = payload.get("mode")
    if mode is not None and mode not in PRUNING_MODES:
        return (
            f"unknown mode {mode!r}; choose from {PRUNING_MODES}"
        )
    deadline = payload.get("deadline_ms")
    if deadline is not None and (
        not isinstance(deadline, (int, float)) or deadline < 0
    ):
        return "'deadline_ms' must be a non-negative number"
    return None


def _validate_ask_payload(payload: object) -> Optional[str]:
    if not isinstance(payload, dict):
        return "request body must be a JSON object"
    if not isinstance(payload.get("query"), str):
        return "'query' (SPARQL text) is required"
    deadline = payload.get("deadline_ms")
    if deadline is not None and (
        not isinstance(deadline, (int, float)) or deadline < 0
    ):
        return "'deadline_ms' must be a non-negative number"
    return None


class _Handler(BaseHTTPRequestHandler):
    """Routes; all protocol/error shaping lives here."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def app(self) -> ReproServer:
        return self.server.app  # type: ignore[attr-defined]

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format: str, *args) -> None:
        _LOG.debug("%s %s", self.address_string(), format % args)

    def _send_json(self, status: int, body: Dict) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_error_body(self, code: str, message: str) -> None:
        registry().counter("server_errors_total").inc()
        status, body = error_body(code, message)
        self._send_json(status, body)

    def _read_body(self) -> Optional[Dict]:
        """Parsed JSON body, or None after an error response."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_error_body("bad_request", "bad Content-Length")
            return None
        if length > self.app.config.max_body_bytes:
            self._send_error_body(
                "body_too_large",
                f"request body of {length} bytes exceeds the "
                f"server's {self.app.config.max_body_bytes}-byte limit",
            )
            self.close_connection = True
            return None
        raw = self.rfile.read(length) if length else b""
        try:
            return json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            self._send_error_body(
                "bad_request", f"request body is not valid JSON: {error}"
            )
            return None

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server convention)
        self._observed(self._route_get)

    def do_POST(self) -> None:  # noqa: N802
        self._observed(self._route_post)

    def _observed(self, route) -> None:
        """Metrics + optional per-request span around one route call."""
        app = self.app
        app._enter_request()
        registry().counter("server_requests_total").inc()
        started = time.perf_counter()
        tracer = (
            Tracer() if app.config.trace_out is not None else None
        )
        try:
            if tracer is None:
                route()
            else:
                with activate(tracer), tracer.span(
                    "http_request",
                    method=self.command, path=self.path,
                ):
                    route()
                app._write_trace(tracer)
        except Exception as error:  # noqa: BLE001 — last-resort 500
            _LOG.exception("unhandled error on %s %s", self.command,
                           self.path)
            try:
                self._send_error_body("internal", str(error))
            except OSError:
                pass  # client already gone
        finally:
            registry().histogram("server_request_latency_ms").record(
                (time.perf_counter() - started) * 1000.0
            )
            app._exit_request()

    def _route_get(self) -> None:
        if self.path == "/health":
            if self.app.draining:
                self._send_error_body("shutting_down", "server draining")
            else:
                self._send_json(200, {"status": "ok"})
        elif self.path == "/info":
            self._send_json(200, self.app.info_doc())
        elif self.path == "/metrics":
            self._send_json(200, registry().snapshot())
        elif self.path in ("/query", "/ask"):
            self._send_error_body(
                "method_not_allowed", f"{self.path} is POST-only"
            )
        else:
            self._send_error_body(
                "not_found", f"no such endpoint: {self.path}"
            )

    def _route_post(self) -> None:
        if self.path not in ("/query", "/ask"):
            if self.path in ("/health", "/info", "/metrics"):
                self._send_error_body(
                    "method_not_allowed", f"{self.path} is GET-only"
                )
            else:
                self._send_error_body(
                    "not_found", f"no such endpoint: {self.path}"
                )
            return
        if self.app.draining:
            self._send_error_body(
                "shutting_down",
                "server is draining; re-submit to a live replica",
            )
            return
        payload = self._read_body()
        if payload is None:
            return
        validator = (
            _validate_query_payload if self.path == "/query"
            else _validate_ask_payload
        )
        problem = validator(payload)
        if problem is not None:
            self._send_error_body("bad_request", problem)
            return
        try:
            if self.path == "/query":
                status, body = self.app.execute_query(payload)
            else:
                status, body = self.app.execute_ask(payload)
        except ContinuationError as error:
            code = (
                "stale_token"
                if getattr(error, "reason", "corrupt") == "stale"
                else "corrupt_token"
            )
            self._send_error_body(code, str(error))
        except DeadlineExceededError as error:
            self._send_error_body("deadline_exceeded", str(error))
        except (ParseError, QueryError) as error:
            self._send_error_body("invalid_query", str(error))
        except UnsupportedOperationError as error:
            self._send_error_body("unsupported_operation", str(error))
        except ReproError as error:
            self._send_error_body("internal", str(error))
        else:
            self._send_json(status, body)
