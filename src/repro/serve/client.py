"""Remote sessions: the :class:`GraphBackend` half of ``repro serve``.

:class:`RemoteBackend` speaks the ``repro-serve/v1`` wire protocol
(stdlib ``urllib`` only) and plugs into
:class:`~repro.api.database.Database` via
:meth:`~repro.api.database.Database.connect`, so the same
``query()/ask()`` code runs unchanged against a server::

    db = Database.connect("http://127.0.0.1:8080")
    rows = db.query(LUBM_QUERIES["L3"], mode="pruned").rows()

**The transparent resume loop**: the server preempts every query at
its time quantum and answers HTTP 206 with a continuation token.
:meth:`RemoteBackend.remote_query` re-submits the token until the
answer completes, counting hops in
``client_resubmissions_total`` — so a caller sees exactly one
complete :class:`RemoteResultSet`, byte-identical to local execution,
no matter how many round-robin slices the server cut the query into.

Server-side failures come back as the same typed exceptions a local
session raises: a stale token is
:class:`~repro.errors.ContinuationError` with ``reason="stale"``, a
blown deadline :class:`~repro.errors.DeadlineExceededError`, a bad
query :class:`~repro.errors.QueryError`.  Transport and protocol
failures raise :class:`~repro.serve.protocol.ProtocolError`.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, Hashable, Iterator, List, Optional, Set, Tuple

from repro.api.result import PruneSummary
from repro.errors import (
    ContinuationError,
    DeadlineExceededError,
    QueryError,
    ReproError,
    UnsupportedOperationError,
)
from repro.obs.metrics import registry
from repro.serve.protocol import (
    WIRE_PROTOCOL,
    ProtocolError,
    decode_pruning,
    decode_rows,
)

__all__ = ["RemoteBackend", "RemoteResultSet"]

#: Wire error code -> the exception a local session would raise.
_CODE_ERRORS = {
    "stale_token": lambda msg: ContinuationError(msg, reason="stale"),
    "corrupt_token": lambda msg: ContinuationError(msg, reason="corrupt"),
    "deadline_exceeded": DeadlineExceededError,
    "invalid_query": QueryError,
    "unsupported_operation": UnsupportedOperationError,
}

#: Safety valve on the transparent resume loop: a server cutting one
#: query into this many slices means a quantum of ~0 against a huge
#: graph — fail loudly rather than hammer it forever.
MAX_RESUME_HOPS = 100_000


class RemoteResultSet:
    """A complete, fully-decoded result received over the wire.

    Mirrors the read surface of :class:`~repro.api.result.ResultSet`
    (iteration, ``rows()``, ``first()``, ``as_set()``, ``variables``,
    ``mode``/``advised``/``pruning``/``complete``) so calling code is
    storage-agnostic.  ``resubmissions`` records how many 206
    continuations the client loop stitched through — the suspension
    count of this query, observable per call.
    """

    def __init__(
        self,
        rows: List[Dict[str, Hashable]],
        variables: Tuple[str, ...],
        mode: str,
        advised: bool,
        pruning: Optional[PruneSummary],
        resubmissions: int = 0,
    ):
        self._rows = rows
        self.variables = variables
        self.mode = mode
        self.advised = advised
        self.pruning = pruning
        self.complete = True
        self.continuation = None
        self.resubmissions = resubmissions
        self.trace = None

    @classmethod
    def from_doc(cls, doc: Dict, resubmissions: int = 0) -> "RemoteResultSet":
        try:
            return cls(
                rows=decode_rows(doc["rows"]),
                variables=tuple(doc["variables"]),
                mode=doc["mode"],
                advised=bool(doc["advised"]),
                pruning=decode_pruning(doc.get("pruning")),
                resubmissions=resubmissions,
            )
        except (KeyError, TypeError) as error:
            raise ProtocolError(
                f"malformed query response on the wire: {error}"
            ) from None

    def __iter__(self) -> Iterator[Dict[str, Hashable]]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def rows(self) -> List[Dict[str, Hashable]]:
        return list(self._rows)

    def first(self) -> Optional[Dict[str, Hashable]]:
        return self._rows[0] if self._rows else None

    def as_set(self) -> Set[Tuple[Tuple[str, Hashable], ...]]:
        """Same canonical form as a local ``ResultSet.as_set()`` —
        equality across the wire *is* the byte-identity check."""
        return {
            tuple(sorted(row.items(), key=lambda kv: kv[0]))
            for row in self._rows
        }

    def __repr__(self) -> str:
        return (
            f"RemoteResultSet({len(self._rows)} solutions, "
            f"mode={self.mode!r}, resubmissions={self.resubmissions})"
        )


class RemoteBackend:
    """:class:`GraphBackend` over a ``repro serve`` endpoint.

    Graph identity (``n_nodes``/``n_triples``/``labels``) is read
    once from ``GET /info`` at connect time.  Adjacency stays on the
    server: :meth:`triple_store`, :attr:`graph`, and :meth:`triples`
    raise — the engine runs server-side, which is the point.
    """

    kind = "remote"

    def __init__(self, url: str, timeout: float = 30.0):
        self.url = url.rstrip("/")
        self.timeout = timeout
        self._info = self._get("/info")
        protocol = self._info.get("protocol")
        if protocol != WIRE_PROTOCOL:
            raise ProtocolError(
                f"server at {self.url} speaks {protocol!r}, "
                f"expected {WIRE_PROTOCOL!r}"
            )

    def capabilities(self):
        from repro.api.backend import BackendCapabilities

        return BackendCapabilities(remote=True)

    # -- transport ---------------------------------------------------------

    def _request(
        self, path: str, payload: Optional[Dict] = None
    ) -> Tuple[int, Dict]:
        url = self.url + path
        data = (
            None if payload is None
            else json.dumps(payload).encode("utf-8")
        )
        request = urllib.request.Request(
            url, data=data,
            headers=(
                {} if data is None
                else {"Content-Type": "application/json"}
            ),
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            body = error.read()
            try:
                doc = json.loads(body)
            except json.JSONDecodeError:
                raise ProtocolError(
                    f"{url} answered HTTP {error.code} with a "
                    "non-JSON body"
                ) from None
            raise self._typed_error(error.code, doc) from None
        except urllib.error.URLError as error:
            raise ProtocolError(
                f"cannot reach {url}: {error.reason}"
            ) from None
        except json.JSONDecodeError as error:
            raise ProtocolError(
                f"{url} answered with a non-JSON body: {error}"
            ) from None

    @staticmethod
    def _typed_error(status: int, doc: Dict) -> ReproError:
        """Map a wire error body back to the local exception type."""
        error = doc.get("error")
        if not isinstance(error, dict) or "code" not in error:
            return ProtocolError(
                f"HTTP {status} without a typed error body"
            )
        code = error["code"]
        message = error.get("message", code)
        factory = _CODE_ERRORS.get(code)
        if factory is not None:
            return factory(message)
        return ProtocolError(f"server error [{code}]: {message}")

    def _get(self, path: str) -> Dict:
        status, doc = self._request(path)
        return doc

    # -- remote execution (consumed by Database) ---------------------------

    def remote_query(
        self, query: str, mode: Optional[str] = None
    ) -> RemoteResultSet:
        """Evaluate to completion, resuming through every 206."""
        payload: Dict = {"query": query}
        if mode is not None:
            payload["mode"] = mode
        return self._run_to_completion(payload)

    def remote_resume(self, token: str) -> RemoteResultSet:
        """Resume a continuation to completion (the token may come
        from this session or any compatible one)."""
        return self._run_to_completion({"continuation": token})

    def remote_ask(self, query: str) -> bool:
        status, doc = self._request("/ask", {"query": query})
        try:
            return bool(doc["answer"])
        except (KeyError, TypeError):
            raise ProtocolError(
                "malformed ask response on the wire"
            ) from None

    def _run_to_completion(self, payload: Dict) -> RemoteResultSet:
        hops = 0
        while True:
            status, doc = self._request("/query", payload)
            if status == 200:
                return RemoteResultSet.from_doc(doc, resubmissions=hops)
            if status == 206:
                token = doc.get("continuation")
                if not isinstance(token, str):
                    raise ProtocolError(
                        "206 response without a continuation token"
                    )
                hops += 1
                if hops > MAX_RESUME_HOPS:
                    raise ProtocolError(
                        f"query did not complete within "
                        f"{MAX_RESUME_HOPS} continuation hops"
                    )
                registry().counter("client_resubmissions_total").inc()
                payload = {"continuation": token}
                continue
            raise ProtocolError(
                f"unexpected HTTP {status} from /query"
            )

    # -- GraphBackend surface ----------------------------------------------

    @property
    def graph(self):
        # None, not raise: runtime_checkable GraphBackend isinstance
        # checks probe this property via hasattr.  Local-only Database
        # operations (advise/simulate/explain) are gated before they
        # ever touch it.
        return None

    def triple_store(self):
        raise ReproError(
            "a remote session has no local triple store; the join "
            "engine runs server-side"
        )

    @property
    def n_nodes(self) -> int:
        return int(self._info["n_nodes"])

    @property
    def n_triples(self) -> int:
        return int(self._info["n_triples"])

    @property
    def labels(self) -> Set[str]:
        return set(self._info["labels"])

    def triples(self) -> Iterator:
        raise ReproError(
            "a remote session does not stream raw triples; query it, "
            "or open the snapshot locally"
        )

    def residency(self):
        return None  # residency is the server's concern

    def set_residency_budget(self, budget: Optional[int]) -> None:
        return None

    def enforce_residency_budget(self, budget: Optional[int]) -> int:
        return 0

    def stats(self) -> Dict[str, object]:
        """Live server-side stats (one ``GET /info`` round trip)."""
        info = self._get("/info")
        stats = dict(info.get("stats", {}))
        stats["kind"] = self.kind
        stats["url"] = self.url
        stats["server_kind"] = info.get("kind")
        return stats

    def health(self) -> bool:
        """True while the server answers ``GET /health`` with 200."""
        try:
            status, _ = self._request("/health")
        except ReproError:
            return False
        return status == 200

    def metrics(self) -> Dict[str, object]:
        """The server's ``GET /metrics`` snapshot."""
        return self._get("/metrics")

    def close(self) -> None:
        return None  # connections are per-request; nothing persists

    def __repr__(self) -> str:
        return f"RemoteBackend({self.url!r})"
