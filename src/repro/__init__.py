"""repro — Fast Dual Simulation Processing of Graph Database Queries.

A complete reproduction of Mennicke et al. (ICDE 2019,
arXiv:1810.09355): the SOI-based dual simulation algorithm
(SPARQLSIM), the Ma et al. and HHK baselines, the SPARQL operator
extensions (AND / OPTIONAL / UNION), dual-simulation database
pruning, an in-memory triple store with two join-engine profiles,
and the LUBM-like / DBpedia-like workloads of the evaluation.

Quickstart::

    from repro import Database

    db = Database.from_workload("movies")
    for row in db.query(
        "SELECT * WHERE { ?director directed ?movie . "
        "?director worked_with ?coworker . }"
    ):
        print(row)

:class:`Database` is the session façade: construct it over any
storage backend (``in_memory``, ``open`` a snapshot, ``from_triples``,
``from_ntriples``, ``from_workload``), tune execution via
:class:`ExecutionProfile`, and stream answers from a lazily-decoded
:class:`ResultSet`.  The component classes (solver, pipeline, engine,
stores) remain importable for paper-level experiments.
"""

from repro.api import (
    BackendCapabilities,
    Database,
    DatabaseStats,
    ExecutionProfile,
    GraphBackend,
    InMemoryBackend,
    ResultSet,
    SimulationOutcome,
    SnapshotBackend,
)
from repro.bitvec import Bitset, LabelMatrixPair
from repro.core import (
    ExecutionLimits,
    SolverOptions,
    SolverResult,
    SystemOfInequalities,
    compile_query,
    hhk_dual_simulation,
    is_dual_simulation,
    largest_dual_simulation,
    largest_dual_simulation_reference,
    ma_dual_simulation,
    prune,
    solve,
)
from repro.errors import (
    ContinuationError,
    DeadlineExceededError,
    ReproError,
    SnapshotCorruptError,
    UnsupportedOperationError,
)
from repro.graph import (
    Graph,
    GraphDatabase,
    Literal,
    example_movie_database,
)
from repro.pipeline import PipelineReport, PruneOutcome, PruningPipeline
from repro.rdf import Iri, RdfLiteral, Variable
from repro.sparql import parse_pattern, parse_query
from repro.store import QueryEngine, QueryResult, TripleStore

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # session façade
    "Database",
    "DatabaseStats",
    "ExecutionProfile",
    "ResultSet",
    "SimulationOutcome",
    "GraphBackend",
    "BackendCapabilities",
    "InMemoryBackend",
    "SnapshotBackend",
    # errors
    "ReproError",
    "ContinuationError",
    "DeadlineExceededError",
    "SnapshotCorruptError",
    "UnsupportedOperationError",
    # graphs
    "Graph",
    "GraphDatabase",
    "Literal",
    "example_movie_database",
    # terms
    "Iri",
    "RdfLiteral",
    "Variable",
    # bitvec
    "Bitset",
    "LabelMatrixPair",
    # core
    "largest_dual_simulation",
    "largest_dual_simulation_reference",
    "ma_dual_simulation",
    "hhk_dual_simulation",
    "is_dual_simulation",
    "SystemOfInequalities",
    "solve",
    "ExecutionLimits",
    "SolverOptions",
    "SolverResult",
    "compile_query",
    "prune",
    # sparql
    "parse_query",
    "parse_pattern",
    # store
    "TripleStore",
    "QueryEngine",
    "QueryResult",
    # pipeline
    "PruningPipeline",
    "PruneOutcome",
    "PipelineReport",
]
