"""repro — Fast Dual Simulation Processing of Graph Database Queries.

A complete reproduction of Mennicke et al. (ICDE 2019,
arXiv:1810.09355): the SOI-based dual simulation algorithm
(SPARQLSIM), the Ma et al. and HHK baselines, the SPARQL operator
extensions (AND / OPTIONAL / UNION), dual-simulation database
pruning, an in-memory triple store with two join-engine profiles,
and the LUBM-like / DBpedia-like workloads of the evaluation.

Quickstart::

    from repro import (
        example_movie_database, parse_query, PruningPipeline,
    )

    db = example_movie_database()
    pipeline = PruningPipeline(db)
    report = pipeline.run(
        "SELECT * WHERE { ?director directed ?movie . "
        "?director worked_with ?coworker . }"
    )
    print(report.result_count, report.triples_after_pruning)
"""

from repro.bitvec import Bitset, LabelMatrixPair
from repro.core import (
    SolverOptions,
    SolverResult,
    SystemOfInequalities,
    compile_query,
    hhk_dual_simulation,
    is_dual_simulation,
    largest_dual_simulation,
    largest_dual_simulation_reference,
    ma_dual_simulation,
    prune,
    solve,
)
from repro.graph import (
    Graph,
    GraphDatabase,
    Literal,
    example_movie_database,
)
from repro.pipeline import PipelineReport, PruneOutcome, PruningPipeline
from repro.rdf import Iri, RdfLiteral, Variable
from repro.sparql import parse_pattern, parse_query
from repro.store import QueryEngine, QueryResult, TripleStore

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # graphs
    "Graph",
    "GraphDatabase",
    "Literal",
    "example_movie_database",
    # terms
    "Iri",
    "RdfLiteral",
    "Variable",
    # bitvec
    "Bitset",
    "LabelMatrixPair",
    # core
    "largest_dual_simulation",
    "largest_dual_simulation_reference",
    "ma_dual_simulation",
    "hhk_dual_simulation",
    "is_dual_simulation",
    "SystemOfInequalities",
    "solve",
    "SolverOptions",
    "SolverResult",
    "compile_query",
    "prune",
    # sparql
    "parse_query",
    "parse_pattern",
    # store
    "TripleStore",
    "QueryEngine",
    "QueryResult",
    # pipeline
    "PruningPipeline",
    "PruneOutcome",
    "PipelineReport",
]
