"""`repro.Database` — the one entry point for query sessions.

The paper's pipeline (parse -> compile to SOI -> solve -> prune ->
join-evaluate, Sect. 5) used to require hand-wiring four classes and
an environment variable.  The façade collapses that into::

    from repro import Database

    db = Database.from_workload("lubm", scale=2)
    for row in db.query("SELECT * WHERE { ?s advisor ?p . }"):
        print(row)

Construction picks the storage backend (`in_memory`, `open` a
snapshot, `from_triples`, `from_ntriples`, `from_workload`); an
:class:`~repro.api.profile.ExecutionProfile` carries every execution
knob; results stream out of a lazily-decoded
:class:`~repro.api.result.ResultSet`.  Everything underneath speaks
the :class:`~repro.api.backend.GraphBackend` protocol, so the same
session code runs over memory or snapshot storage byte-identically.
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.api.backend import (
    GraphBackend,
    InMemoryBackend,
    NameTriple,
    SnapshotBackend,
    backend_capabilities,
)
from repro.api.continuation import (
    SuspendedQuery,
    decode_token,
    encode_token,
    fingerprint,
)
from repro.api.profile import ExecutionProfile
from repro.api.result import (
    BranchSimulation,
    PruneSummary,
    ResultSet,
    SimulationOutcome,
)
from repro.core.degrade import DegradationEvent, capture_events
from repro.errors import (
    ContinuationError,
    ReproError,
    UnsupportedOperationError,
)
from repro.obs.metrics import COUNT_BUCKETS, registry
from repro.obs.trace import Tracer, activate, current_tracer
from repro.storage.tiered import ResidencyReport

ProfileLike = Union[ExecutionProfile, str, None]

#: Snapshot backends shared across `Database.open(..., cached=True)`
#: calls, keyed by (resolved path, mtime_ns, size) so a rebuilt
#: snapshot never serves stale blocks.
_OPEN_CACHE: Dict[Tuple[str, int, int], SnapshotBackend] = {}

#: Guards every _OPEN_CACHE access.  Held across backend construction
#: in :meth:`Database.open` so two threads racing to open the same
#: snapshot share one backend instead of leaking a second mmap.
_OPEN_CACHE_LOCK = threading.Lock()


def clear_open_cache() -> None:
    """Close and forget every cached snapshot backend."""
    with _OPEN_CACHE_LOCK:
        backends = list(_OPEN_CACHE.values())
        _OPEN_CACHE.clear()
    for backend in backends:
        backend.close()


def _open_cache_after_fork() -> None:
    # A forked child inherits the parent's cache entries, but their
    # mmaps/fds and the cache lock's state belong to the parent:
    # closing them here would yank pages out from under it.  Drop the
    # references (the parent still owns the real handles) and start
    # from a fresh, guaranteed-unlocked lock.
    global _OPEN_CACHE_LOCK
    _OPEN_CACHE_LOCK = threading.Lock()
    _OPEN_CACHE.clear()


os.register_at_fork(after_in_child=_open_cache_after_fork)


@dataclass
class DatabaseStats:
    """`Database.stats()` — one flat snapshot of a session.

    ``residency`` is the report captured when :meth:`Database.stats`
    ran; :attr:`within_residency_budget` re-reads the backend instead
    of trusting that snapshot, so the flag always reflects the
    *post-demotion* state even when promotions (and enforcement)
    happened after the stats object was built.
    """

    backend: str
    n_triples: int
    n_nodes: int
    n_labels: int
    profile: ExecutionProfile
    path: Optional[Path] = None
    residency: Optional[ResidencyReport] = None
    residency_source: Optional[Callable[[], Optional[ResidencyReport]]] = (
        field(default=None, repr=False, compare=False)
    )
    #: Kernel fallbacks recorded during this session's operations
    #: (batched → packed → reference), oldest first.
    degradations: Tuple[DegradationEvent, ...] = ()
    #: Process-wide metrics snapshot (counters + histogram summaries
    #: from :func:`repro.obs.metrics.registry`) taken when
    #: :meth:`Database.stats` ran.
    metrics: Optional[Dict[str, object]] = None

    def _live_residency(self) -> Optional[ResidencyReport]:
        if self.residency_source is not None:
            try:
                return self.residency_source()
            except (ValueError, OSError):
                # Backend released since this stats object was built
                # (closed mmap): answer from the captured snapshot,
                # like the pre-enforcement behavior.
                pass
        return self.residency

    @property
    def within_residency_budget(self) -> Optional[bool]:
        """None when no budget (or no residency notion) applies."""
        budget = self.profile.residency_budget
        residency = self._live_residency()
        if budget is None or residency is None:
            return None
        return residency.resident_bytes <= budget

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "backend": self.backend,
            "n_triples": self.n_triples,
            "n_nodes": self.n_nodes,
            "n_labels": self.n_labels,
            "engine": self.profile.engine,
            "pruning": self.profile.pruning,
            "kernel": self.profile.resolved_kernel(),
        }
        if self.path is not None:
            out["path"] = str(self.path)
        if self.residency is not None:
            out["residency"] = {
                "hot_labels": self.residency.hot_labels,
                "cold_labels": self.residency.cold_labels,
                "promotions": self.residency.promotions,
                "demotions": self.residency.demotions,
                "resident_labels": self.residency.resident_labels,
                "resident_bytes": self.residency.resident_bytes,
                "on_disk_bytes": self.residency.on_disk_bytes,
                "promotion_retries": self.residency.promotion_retries,
            }
        if self.profile.residency_budget is not None:
            out["residency_budget"] = self.profile.residency_budget
            out["within_residency_budget"] = self.within_residency_budget
        if self.degradations:
            out["degradations"] = [
                event.to_dict() for event in self.degradations
            ]
        if self.metrics is not None:
            out["metrics"] = self.metrics
        return out


class Database:
    """A query session over one :class:`GraphBackend`."""

    def __init__(self, backend: GraphBackend, profile: ProfileLike = None):
        self.backend = backend
        self.profile = ExecutionProfile.coerce(profile)
        self._pipeline = None
        self._advisor = None
        self._cache_key: Optional[Tuple[str, int, int]] = None
        self._degradations: list = []
        # Per-query cached fixpoints for incremental maintenance on
        # writable sessions; epochs (not resets) handle staleness.
        self._fixpoint_cache = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        profile: ProfileLike = None,
        cached: bool = True,
    ) -> "Database":
        """Open a snapshot file built by ``repro db build``.

        With ``cached`` (the default), snapshot backends are shared
        process-wide per (path, mtime, size): repeated opens of the
        same file reuse the mmap, the tiered view (already-promoted
        labels included), and the lazily built join-engine store
        instead of rebuilding them per call.
        """
        path = Path(path)
        key: Optional[Tuple[str, int, int]] = None
        if cached:
            try:
                stat = path.stat()
                key = (str(path.resolve()), stat.st_mtime_ns, stat.st_size)
            except OSError:
                key = None  # let SnapshotReader raise its own error
        if key is None:
            db = cls(SnapshotBackend(path), profile)
            db._cache_key = None
            return db
        evicted = []
        with _OPEN_CACHE_LOCK:
            backend = _OPEN_CACHE.get(key)
            if backend is None:
                # Held across construction on purpose: two threads
                # racing to open the same snapshot must share one
                # backend, not leak a second mmap (check-then-insert
                # was unlocked before PR 10).
                backend = SnapshotBackend(path)
                # A rebuilt snapshot gets a new (mtime, size) key; the
                # entry under the old key would otherwise pin its mmap
                # for the life of the process.  Evict same-path
                # predecessors now.
                for old in [
                    k for k in _OPEN_CACHE
                    if k[0] == key[0] and k != key
                ]:
                    evicted.append(_OPEN_CACHE.pop(old))
                _OPEN_CACHE[key] = backend
        for stale_backend in evicted:
            stale_backend.close()
        db = cls(backend, profile)
        db._cache_key = key
        return db

    @classmethod
    def in_memory(cls, db=None, profile: ProfileLike = None) -> "Database":
        """Wrap a :class:`~repro.graph.database.GraphDatabase` (or
        start empty) as an in-memory session."""
        return cls(InMemoryBackend(db), profile)

    @classmethod
    def writable(cls, db=None, profile: ProfileLike = None) -> "Database":
        """An in-memory session that accepts writes.

        Wraps the (possibly empty) database in an
        :class:`~repro.store.overlay.OverlayBackend` so :meth:`add`,
        :meth:`retract` and :meth:`compact` work, and repeated queries
        after small deltas are maintained incrementally (see
        ``ExecutionProfile.incremental``).
        """
        from repro.store.overlay import OverlayBackend

        return cls(OverlayBackend(InMemoryBackend(db)), profile)

    @classmethod
    def edit(
        cls, path: Union[str, Path], profile: ProfileLike = None
    ) -> "Database":
        """Open a snapshot for editing.

        The snapshot file itself stays immutable: writes accumulate in
        an in-memory :class:`~repro.store.overlay.OverlayBackend`
        delta on top of it, and :meth:`compact` folds base + delta
        into a fresh snapshot.  The backend is private to this session
        (never shared through the open-cache — a cached read-only
        backend must not see another session's delta).
        """
        from repro.store.overlay import OverlayBackend

        return cls(OverlayBackend(SnapshotBackend(path)), profile)

    @classmethod
    def connect(
        cls,
        url: str,
        profile: ProfileLike = None,
        timeout: float = 30.0,
    ) -> "Database":
        """Connect to a ``repro serve`` HTTP endpoint.

        The session speaks the same surface as a local one —
        :meth:`query`, :meth:`ask`, :meth:`resume`, :meth:`stats` —
        over a :class:`~repro.serve.client.RemoteBackend`.  When the
        server suspends a query at its time quantum (HTTP 206), the
        client re-submits the continuation transparently until the
        result completes, so calling code never sees a partial
        result.  Execution knobs (engine, kernel, quantum, budget)
        are the *server's*; of the local profile only the pruning
        mode travels with each request.  Server-side operations
        (``simulate``, ``explain``, ``benchmark``) raise
        :class:`~repro.errors.ReproError` on a remote session.
        """
        from repro.serve.client import RemoteBackend

        return cls(RemoteBackend(url, timeout=timeout), profile)

    @classmethod
    def from_triples(
        cls,
        triples: Iterable[NameTriple],
        profile: ProfileLike = None,
    ) -> "Database":
        """Build an in-memory session from (subject, predicate,
        object) triples."""
        from repro.graph.database import GraphDatabase

        return cls.in_memory(GraphDatabase.from_triples(triples), profile)

    @classmethod
    def from_ntriples(
        cls, source: Union[str, Path], profile: ProfileLike = None
    ) -> "Database":
        """Parse an N-Triples file (or text) into an in-memory
        session."""
        from repro.graph.io import load_ntriples

        return cls.in_memory(load_ntriples(source), profile)

    @classmethod
    def from_workload(
        cls,
        name: str,
        scale: int = 1,
        profile: ProfileLike = None,
        cache_dir: Optional[Union[str, Path]] = None,
        seed: Optional[int] = None,
        **overrides,
    ) -> "Database":
        """Generate one of the evaluation workloads.

        ``name`` is ``"lubm"`` (``scale`` = universities),
        ``"dbpedia"`` (``scale`` = entity multiplier) or ``"movies"``
        (the fixed Fig. 1(a) database).  Extra ``overrides`` go to the
        generator config.  For LUBM, passing ``cache_dir`` switches to
        the build-once/open-many path: the workload is serialized to a
        snapshot under that directory on first use and every later
        call is a cheap snapshot open.
        """
        kind = name.lower()
        if seed is not None:
            overrides["seed"] = seed
        if kind == "lubm":
            from repro.workloads import build_lubm_snapshot, generate_lubm

            overrides.setdefault("n_universities", scale)
            if cache_dir is not None:
                path = build_lubm_snapshot(cache_dir, **overrides)
                return cls.open(path, profile)
            return cls.in_memory(generate_lubm(**overrides), profile)
        if cache_dir is not None:
            raise ReproError(
                "cache_dir is only supported for the 'lubm' workload, "
                f"not {name!r}"
            )
        if kind == "dbpedia":
            from repro.workloads import generate_dbpedia

            overrides.setdefault("scale", scale)
            return cls.in_memory(generate_dbpedia(**overrides), profile)
        if kind == "movies":
            if overrides or scale != 1:
                raise ReproError(
                    "the 'movies' workload is the fixed Fig. 1(a) "
                    "database and takes no scale/seed/overrides"
                )
            from repro.graph.database import example_movie_database

            return cls.in_memory(example_movie_database(), profile)
        raise ReproError(
            f"unknown workload {name!r}; choose from "
            "('lubm', 'dbpedia', 'movies')"
        )

    # -- write surface ----------------------------------------------------

    def capabilities(self):
        """This session's declared
        :class:`~repro.api.backend.BackendCapabilities`."""
        return backend_capabilities(self.backend)

    def _require_writable(self, operation: str) -> None:
        if not backend_capabilities(self.backend).writable:
            raise UnsupportedOperationError(
                f"{operation} needs a writable backend; open the "
                "session with Database.writable() or "
                "Database.edit(path) instead (this backend is "
                f"{self.backend.kind!r})"
            )

    def add(self, triples: Iterable[NameTriple]) -> int:
        """Assert (subject, predicate, object) triples; returns how
        many were actually new (RDF set semantics — re-adding a
        present triple is a no-op).

        Unknown subjects/objects extend the node space; adding a
        triple retracted earlier simply cancels the retraction.
        Cached query fixpoints are maintained incrementally, not
        discarded (see :mod:`repro.core.incremental`).
        """
        self._require_writable("add")
        applied = self.backend.add(triples)
        if applied:
            self._advisor = None
        return applied

    def retract(self, triples: Iterable[NameTriple]) -> int:
        """Retract triples; returns how many were actually present.
        Retracting an absent triple is a no-op; nodes are never
        removed (the index space only grows)."""
        self._require_writable("retract")
        applied = self.backend.retract(triples)
        if applied:
            self._advisor = None
        return applied

    def compact(
        self,
        out_path: Union[str, Path],
        cold_threshold: Optional[float] = None,
    ):
        """Fold base + delta into a fresh snapshot at ``out_path``.

        The written file is byte-equivalent to building a snapshot
        from a database that never had the delta: reopening it with
        :meth:`open` (or :meth:`edit`) answers every query exactly as
        this overlay session does.  Returns the writer's
        :class:`~repro.storage.writer.WriteReport`.
        """
        self._require_writable("compact")
        from repro.storage.writer import SnapshotWriter

        if cold_threshold is None:
            writer = SnapshotWriter(Path(out_path))
        else:
            writer = SnapshotWriter(
                Path(out_path), cold_threshold=cold_threshold
            )
        return writer.write(self.backend.graph)

    # -- internals --------------------------------------------------------

    def _incremental_for(self, query, limits):
        """An :class:`~repro.core.incremental.IncrementalSolver` for
        this (query, session), or None to solve normally.

        Incremental maintenance needs an epoch-tracking backend (the
        overlay), the profile knob on, unbounded execution (a
        preempted cascade would checkpoint synthetic state), and the
        query as text (it is the cache key).
        """
        if limits is not None or not self.profile.incremental:
            return None
        if not isinstance(query, str):
            return None
        if not hasattr(self.backend.graph, "changed_since"):
            return None
        from repro.core.incremental import FixpointCache, IncrementalSolver

        if self._fixpoint_cache is None:
            self._fixpoint_cache = FixpointCache()
        return IncrementalSolver(
            self._fixpoint_cache.entry(query),
            self.profile.incremental_fallback_fraction,
        )

    def _pipeline_for(self):
        if self._pipeline is None:
            from repro.pipeline.pruned_query import PruningPipeline

            self._pipeline = PruningPipeline(
                profile=self.profile.engine,
                solver_options=self.profile.solver_options(),
                backend=self.backend,
            )
        return self._pipeline

    def _engine(self):
        return self._pipeline_for().engine

    def _require_local(self, operation: str) -> None:
        """Operations that need the engine in-process cannot run over
        a remote connection."""
        if backend_capabilities(self.backend).remote:
            raise UnsupportedOperationError(
                f"{operation} is not available over a remote "
                "connection; run it in the serving process (or open "
                "the snapshot locally)"
            )

    def advise(self, query):
        """The Sect. 5.3 statistics advisor's verdict for one query
        under this session's engine profile."""
        self._require_local("advise")
        if self._advisor is None:
            from repro.pipeline.advisor import PruningAdvisor

            self._advisor = PruningAdvisor(self.backend.triple_store())
        return self._advisor.advise(query, self.profile.engine)

    def _arm_budget(self) -> None:
        """Hand this session's budget to the backend before a query,
        so promotions during the solve shed LRU labels on the spot.

        Re-armed per operation because `Database.open` shares cached
        backends across sessions: whichever session is executing has
        its own profile's budget in force.
        """
        self.backend.set_residency_budget(self.profile.residency_budget)

    def _enforce_budget(self) -> None:
        """Query-boundary enforcement: LRU-demote down to the budget
        (hard ceiling, replacing the pre-PR-5 advisory warning) and
        compact the batched kernel's block."""
        if self.profile.residency_budget is not None:
            self.backend.enforce_residency_budget(
                self.profile.residency_budget
            )

    # -- query surface ----------------------------------------------------

    def query(
        self,
        query,
        mode: Optional[str] = None,
        trace: Optional[bool] = None,
        ) -> ResultSet:
        """Evaluate a SELECT query; returns a streaming
        :class:`ResultSet`.

        ``mode`` overrides the profile's pruning mode for this call:
        ``"full"`` goes straight to the join engine, ``"pruned"``
        prunes via dual simulation first (Theorem 2 preserves all
        answers; non-well-designed OPTIONALs may gain overapproximated
        ones, as in the paper), ``"auto"`` asks the advisor.

        ``trace=True`` (or a profile ``trace=True``) collects a
        query-lifecycle trace: the returned result carries a
        :class:`~repro.obs.trace.Tracer` as ``.trace`` whose span tree
        covers parse, advise, per-branch prune/solve, extraction, and
        the join — render it with :func:`repro.obs.render_profile` or
        export JSONL via ``result.trace.write_jsonl(path)``.

        Under a profile ``time_quantum_ms``, the dual-simulation stage
        is preemptable: when the quantum expires the call returns a
        *partial* :class:`ResultSet` (``complete`` is False, no rows)
        whose ``continuation`` token resumes the exact same execution
        via :meth:`resume` — on this session or any compatible one.
        A profile ``deadline_ms`` instead raises
        :class:`~repro.errors.DeadlineExceededError` on expiry.
        """
        if not (self.profile.trace if trace is None else trace):
            return self._execute_query(query, mode)
        tracer = Tracer()
        with activate(tracer), tracer.span(
            "query",
            engine=self.profile.engine,
            kernel=self.profile.resolved_kernel(),
        ) as root:
            result = self._execute_query(query, mode)
            root.set_attributes(
                mode=result.mode, complete=result.complete
            )
        result.trace = tracer
        return result

    def _execute_query(self, query, mode: Optional[str]) -> ResultSet:
        mode = mode or self.profile.pruning
        if mode not in ("pruned", "full", "auto"):
            raise ReproError(
                f"unknown query mode {mode!r}; choose from "
                "('pruned', 'full', 'auto')"
            )
        remote = getattr(self.backend, "remote_query", None)
        if remote is not None:
            if not isinstance(query, str):
                raise ReproError(
                    "remote execution needs the query as SPARQL text"
                )
            started = time.perf_counter()
            result = remote(query, mode=mode)
            self._note_query(started)
            return result
        tracer = current_tracer()
        advised = False
        limits = self.profile.execution_limits()
        started = time.perf_counter()
        self._arm_budget()
        with self.profile.kernel_context(), \
                capture_events(self._degradations):
            if mode == "auto":
                with tracer.span("advise") as span:
                    mode = (
                        "pruned" if self.advise(query).recommended
                        else "full"
                    )
                    span.set_attribute("decision", mode)
                advised = True
            with tracer.span("prepare"):
                pipeline = self._pipeline_for()
            if mode == "full":
                with tracer.span("join", mode="full") as span:
                    result = pipeline.evaluate_full(query)
                    span.set_attribute(
                        "solutions", len(result.solutions)
                    )
                summary = None
            else:
                outcome = pipeline.prune(
                    query, limits=limits,
                    incremental=self._incremental_for(query, limits),
                )
                if self._is_suspension(outcome):
                    self._note_query(started, suspended=True)
                    return self._suspend(query, outcome, advised)
                with tracer.span("join", mode="pruned") as span:
                    result, outcome = pipeline.evaluate_pruned(
                        query, outcome
                    )
                    span.set_attribute(
                        "solutions", len(result.solutions)
                    )
                summary = PruneSummary(
                    triples_total=self.backend.n_triples,
                    triples_after=outcome.triples_after_pruning,
                    rounds=outcome.total_rounds,
                    t_simulation=outcome.t_simulation,
                )
        self._enforce_budget()
        self._note_query(started, summary=summary)
        return ResultSet(result, mode=mode, pruning=summary, advised=advised)

    @staticmethod
    def _note_query(
        started: float,
        summary: Optional[PruneSummary] = None,
        suspended: bool = False,
    ) -> None:
        """Record one query's process-wide metrics."""
        reg = registry()
        reg.counter("queries_total").inc()
        reg.histogram("query_latency_ms").record(
            (time.perf_counter() - started) * 1000.0
        )
        if suspended:
            reg.counter("query_suspensions_total").inc()
        if summary is not None:
            reg.histogram("solver_rounds", COUNT_BUCKETS).record(
                summary.rounds
            )

    @staticmethod
    def _is_suspension(outcome) -> bool:
        from repro.pipeline.pruned_query import PruneSuspension

        return isinstance(outcome, PruneSuspension)

    def _suspend(self, query, suspension, advised: bool) -> ResultSet:
        """Wrap a prune-stage suspension into a partial ResultSet."""
        if not isinstance(query, str):
            raise ReproError(
                "preemptable execution needs the query as SPARQL text "
                "(the continuation token embeds it); pass the query "
                "string instead of a parsed AST"
            )
        token = encode_token(
            SuspendedQuery(
                query_text=query,
                branch_index=suspension.branch_index,
                branch_states=suspension.branch_states,
                t_simulation=suspension.t_simulation,
                advised=advised,
            ),
            fingerprint(query, self.backend, self.profile.solver),
        )
        self._enforce_budget()
        return ResultSet(
            None, mode="pruned", advised=advised,
            complete=False, continuation=token,
        )

    def resume(
        self,
        token: Union[str, ResultSet],
        trace: Optional[bool] = None,
    ) -> ResultSet:
        """Continue a query suspended by the time quantum.

        Accepts the token string or the partial :class:`ResultSet`
        itself.  The token is CRC-sealed and fingerprint-bound:
        corrupted tokens, tokens from another query/database/snapshot,
        or tokens taken under different solver strategy raise
        :class:`~repro.errors.ContinuationError`.  The quantum applies
        afresh to this call, so resumption may itself suspend again;
        loop until ``result.complete``.  ``trace`` works as in
        :meth:`query`, rooting the span tree at ``resume``.
        """
        registry().counter("continuation_resumes_total").inc()
        if not (self.profile.trace if trace is None else trace):
            return self._execute_resume(token)
        tracer = Tracer()
        with activate(tracer), tracer.span(
            "resume", engine=self.profile.engine
        ) as root:
            result = self._execute_resume(token)
            root.set_attribute("complete", result.complete)
        result.trace = tracer
        return result

    def _execute_resume(self, token: Union[str, ResultSet]) -> ResultSet:
        if isinstance(token, ResultSet) or not isinstance(token, str):
            continuation = getattr(token, "continuation", None)
            if continuation is None:
                raise ContinuationError(
                    "this ResultSet is complete; nothing to resume"
                )
            token = continuation
        remote = getattr(self.backend, "remote_resume", None)
        if remote is not None:
            started = time.perf_counter()
            result = remote(token)
            self._note_query(started)
            return result
        fp, suspension = decode_token(token)
        expected = fingerprint(
            suspension.query_text, self.backend, self.profile.solver
        )
        if fp != expected:
            raise ContinuationError(
                "stale continuation token: it was issued for a "
                "different query, database snapshot, or solver "
                "configuration",
                reason="stale",
            )
        from repro.pipeline.pruned_query import PruneSuspension

        tracer = current_tracer()
        limits = self.profile.execution_limits()
        started = time.perf_counter()
        self._arm_budget()
        with self.profile.kernel_context(), \
                capture_events(self._degradations):
            pipeline = self._pipeline_for()
            resume_state = PruneSuspension(
                query=pipeline.parse(suspension.query_text),
                branch_index=suspension.branch_index,
                branch_states=suspension.branch_states,
                t_simulation=suspension.t_simulation,
            )
            outcome = pipeline.prune(
                suspension.query_text, limits=limits, resume=resume_state
            )
            if self._is_suspension(outcome):
                self._note_query(started, suspended=True)
                return self._suspend(
                    suspension.query_text, outcome, suspension.advised
                )
            with tracer.span("join", mode="pruned") as span:
                result, outcome = pipeline.evaluate_pruned(
                    suspension.query_text, outcome
                )
                span.set_attribute("solutions", len(result.solutions))
            summary = PruneSummary(
                triples_total=self.backend.n_triples,
                triples_after=outcome.triples_after_pruning,
                rounds=outcome.total_rounds,
                t_simulation=outcome.t_simulation,
            )
        self._enforce_budget()
        self._note_query(started, summary=summary)
        return ResultSet(
            result, mode="pruned", pruning=summary,
            advised=suspension.advised,
        )

    def ask(self, query) -> bool:
        """ASK semantics with the dual-simulation fast path (an empty
        simulation answers 'no' without touching the join engine).

        Honors the profile ``deadline_ms`` (never suspends — ASK has
        no continuation surface)."""
        remote = getattr(self.backend, "remote_ask", None)
        if remote is not None:
            return remote(query)
        limits = self.profile.execution_limits(include_quantum=False)
        self._arm_budget()
        with self.profile.kernel_context(), \
                capture_events(self._degradations):
            answer = self._pipeline_for().ask(query, limits=limits)
        self._enforce_budget()
        return answer

    def simulate(self, query) -> SimulationOutcome:
        """Compile the query to systems of inequalities and compute
        the largest dual simulation per union branch (Sect. 3/4).

        Runs entirely on the solver side of the backend — a snapshot
        session promotes only the labels the query touches and never
        builds the join-engine store.
        """
        self._require_local("simulate")
        from repro.core.compiler import compile_query
        from repro.core.solver import solve

        branches = []
        limits = self.profile.execution_limits(include_quantum=False)
        self._arm_budget()
        with self.profile.kernel_context(), \
                capture_events(self._degradations):
            for number, compiled in enumerate(compile_query(query)):
                solved = solve(
                    compiled.soi, self.backend.graph,
                    self.profile.solver_options(), limits=limits,
                )
                candidates: Dict[str, Tuple[Hashable, ...]] = {}
                for variable in sorted(compiled.variables(), key=str):
                    names: Set[Hashable] = set()
                    for vid in compiled.all_vids(variable):
                        names |= solved.candidates(vid)
                    candidates[variable.name] = tuple(
                        sorted(names, key=str)
                    )
                branches.append(
                    BranchSimulation(
                        index=number,
                        soi=compiled.soi.describe(),
                        report=solved.report,
                        candidates=candidates,
                    )
                )
        self._enforce_budget()
        return SimulationOutcome(branches)

    def explain(self, query) -> str:
        """Human-readable account of how this session would run the
        query: backend, pruning decision, then the join engine's plan."""
        self._require_local("explain")
        stats = self.backend.stats()
        lines = [
            f"backend: {self.backend.kind} "
            f"({stats['n_triples']} triples, {stats['n_nodes']} nodes, "
            f"{stats['n_labels']} labels)"
        ]
        mode = self.profile.pruning
        if mode == "auto":
            advice = self.advise(query)
            decision = "pruned" if advice.recommended else "full"
            lines.append(
                f"pruning: auto -> {decision} "
                f"(est. join work {advice.estimated_join_work:.0f} vs "
                f"simulation {advice.estimated_simulation_work:.0f})"
            )
        else:
            lines.append(f"pruning: {mode}")
        lines.append(self._engine().explain(query))
        return "\n".join(lines)

    def benchmark(self, query, name: str = "query"):
        """Run the paper's full per-query experiment (full vs pruned
        evaluation, Tables 3-5); returns a
        :class:`~repro.pipeline.PipelineReport`."""
        self._require_local("benchmark")
        self._arm_budget()
        with self.profile.kernel_context(), \
                capture_events(self._degradations):
            report = self._pipeline_for().run(query, name=name)
        self._enforce_budget()
        return report

    # -- introspection ----------------------------------------------------

    @property
    def n_triples(self) -> int:
        return self.backend.n_triples

    @property
    def epoch(self) -> Optional[int]:
        """The backend's mutation epoch (None on read-only backends).
        Bumps once per :meth:`add`/:meth:`retract` batch that changed
        anything."""
        return getattr(self.backend, "epoch", None)

    @property
    def n_nodes(self) -> int:
        return self.backend.n_nodes

    @property
    def labels(self) -> Set[str]:
        return self.backend.labels

    def triples(self) -> Iterator[NameTriple]:
        return self.backend.triples()

    def stats(self) -> DatabaseStats:
        # The live-residency source holds the backend weakly: stats
        # objects collected per query for monitoring must not pin the
        # resident tier (that would be the unbounded-memory pattern
        # the residency budget exists to prevent).
        backend_ref = weakref.ref(self.backend)

        def live_residency() -> Optional[ResidencyReport]:
            backend = backend_ref()
            if backend is None:
                raise ValueError("backend released")  # snapshot fallback
            return backend.residency()

        return DatabaseStats(
            backend=self.backend.kind,
            n_triples=self.backend.n_triples,
            n_nodes=self.backend.n_nodes,
            n_labels=len(self.backend.labels),
            profile=self.profile,
            path=getattr(self.backend, "path", None),
            residency=self.backend.residency(),
            residency_source=live_residency,
            degradations=tuple(self._degradations),
            metrics=registry().snapshot(),
        )

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Release backend resources (and evict a cached snapshot
        backend from the open-cache)."""
        if self._cache_key is not None:
            with _OPEN_CACHE_LOCK:
                _OPEN_CACHE.pop(self._cache_key, None)
            self._cache_key = None
        self.backend.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"Database(backend={self.backend.kind}, "
            f"triples={self.backend.n_triples}, "
            f"engine={self.profile.engine!r}, "
            f"pruning={self.profile.pruning!r})"
        )
