"""Execution configuration for a :class:`~repro.api.database.Database`.

Before the façade, running a query meant scattering configuration
across an environment variable (``REPRO_KERNEL``), a positional
engine-profile string, ``SolverOptions`` kwargs, and the choice of
constructor (pruned pipeline vs bare engine).  :class:`ExecutionProfile`
collects all of it in one immutable value object that travels with the
session.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro._deprecation import deprecated_call
from repro.bitvec.kernel import KERNELS, active_kernel, use_kernel
from repro.core.checkpoint import ExecutionLimits
from repro.core.parallel import WORKER_MODES
from repro.core.solver import SolverOptions
from repro.errors import ReproError
from repro.store.engine import PROFILES


def _default_solver_options() -> SolverOptions:
    # Façade sessions degrade kernel faults (batched → packed →
    # reference) instead of failing the query; the core default stays
    # off so kernel-equivalence tests see real failures.
    return SolverOptions(degrade_on_fault=True)

#: Query execution modes (``ExecutionProfile.pruning``).
PRUNING_MODES = ("pruned", "full", "auto")


@dataclass(frozen=True)
class ExecutionProfile:
    """How a session executes queries.

    * ``engine`` — join-engine profile (``rdfox-like`` materializes,
      ``virtuoso-like`` propagates bindings), as in Tables 4/5;
    * ``pruning`` — whether :meth:`Database.query` prunes via dual
      simulation first: ``"pruned"`` always, ``"full"`` never,
      ``"auto"`` per query on the statistics advisor's verdict
      (the paper's Sect. 5.3 guideline);
    * ``kernel`` — bit-matrix product kernel: ``packed`` (per-matrix
      vectorized products), ``batched`` (whole solver rounds as one
      gather+reduce over the multi-label
      :class:`~repro.bitvec.kernel.BatchedBlockSet`), or
      ``reference`` (the seed per-row loops, kept for ablation);
      ``None`` defers to the process default, which still honors the
      deprecated ``REPRO_KERNEL`` variable;
    * ``solver`` — SOI fixpoint strategy knobs (Sect. 3.3);
    * ``residency_budget`` — hard ceiling, in bytes, on resident
      packed blocks for snapshot-backed sessions.  Enforced by an LRU
      demotion pass over materialized labels: after every query (and
      on every mid-solve promotion) the least-recently-touched labels
      drop back to their on-disk rows until the ceiling holds, with
      Eq. (13) summaries kept resident.  Answers are unaffected —
      demoted labels transparently re-materialize on the next touch —
      and ``Database.stats()`` reports the demotion counters.
      (Advisory-only before PR 5: the old one-time ``ResourceWarning``
      is gone.)
    * ``time_quantum_ms`` — preemptable execution: the dual-simulation
      stage of :meth:`Database.query` suspends after this much wall
      time and returns a partial :class:`~repro.api.result.ResultSet`
      carrying a continuation token (``0`` means single-step — exactly
      one solver evaluation per call).  Resume with
      :meth:`Database.resume`; the stitched-together run is
      bit-identical to an uninterrupted one.
    * ``deadline_ms`` — hard wall-clock bound on the dual-simulation
      stage of ``query``/``ask``/``simulate``; exceeding it raises
      :class:`~repro.errors.DeadlineExceededError`.
    * ``trace`` — collect a query-lifecycle trace for every query run
      under this profile: each :meth:`Database.query` activates a
      fresh :class:`~repro.obs.trace.Tracer` and attaches it to the
      returned :class:`~repro.api.result.ResultSet` as ``.trace``
      (render with :func:`repro.obs.render_profile`, export with
      ``trace.write_jsonl``).  Off by default — the disabled path is a
      single module-global read per hook site.
    * ``incremental`` — maintain cached dual-simulation fixpoints
      incrementally on writable (overlay) sessions: after a delta, a
      repeated query re-solves only the cone of influence the touched
      labels can reach (:mod:`repro.core.incremental`), bit-identical
      to a cold re-solve.  Ignored on read-only backends; on by
      default.
    * ``incremental_fallback_fraction`` — give up on the bounded
      cascade and re-solve cold when the delta re-activates more than
      this fraction of the query's inequalities.
    * ``workers`` — parallel evaluation width for the batched kernel's
      flush computes (:mod:`repro.core.parallel`).  ``None`` or ``1``
      runs serial (the exact pre-parallel code path); higher values
      are a pure throughput knob — answers, trajectory, and work
      counters stay bit-identical, so continuations taken under one
      worker count resume under any other.
    * ``worker_mode`` — ``"threads"`` (default; safe on every
      backend — NumPy releases the GIL inside the bitwise kernels) or
      ``"fork"`` (a pool of forked processes each mmapping its own
      — on sharded snapshots, disjoint — subset of the snapshot;
      falls back to threads off-snapshot).
    """

    engine: str = "virtuoso-like"
    pruning: str = "auto"
    kernel: Optional[str] = None
    solver: SolverOptions = field(default_factory=_default_solver_options)
    residency_budget: Optional[int] = None
    time_quantum_ms: Optional[float] = None
    deadline_ms: Optional[float] = None
    trace: bool = False
    incremental: bool = True
    incremental_fallback_fraction: float = 0.5
    workers: Optional[int] = None
    worker_mode: str = "threads"

    def __post_init__(self):
        if self.engine not in PROFILES:
            raise ReproError(
                f"unknown engine profile {self.engine!r}; "
                f"choose from {sorted(PROFILES)}"
            )
        if self.pruning not in PRUNING_MODES:
            raise ReproError(
                f"unknown pruning mode {self.pruning!r}; "
                f"choose from {PRUNING_MODES}"
            )
        if self.kernel is not None and self.kernel not in KERNELS:
            raise ReproError(
                f"unknown kernel {self.kernel!r}; choose from {KERNELS}"
            )
        if (
            self.residency_budget is not None
            and self.residency_budget < 0
        ):
            raise ReproError("residency_budget must be >= 0")
        if self.time_quantum_ms is not None and self.time_quantum_ms < 0:
            raise ReproError(
                f"time_quantum_ms must be >= 0, got {self.time_quantum_ms}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ReproError(
                f"deadline_ms must be > 0, got {self.deadline_ms}"
            )
        if not 0.0 <= self.incremental_fallback_fraction <= 1.0:
            raise ReproError(
                f"incremental_fallback_fraction must be in [0, 1], "
                f"got {self.incremental_fallback_fraction}"
            )
        if self.workers is not None and (
            not isinstance(self.workers, int) or self.workers < 1
        ):
            raise ReproError(
                f"workers must be a positive integer, got {self.workers!r}"
            )
        if self.worker_mode not in WORKER_MODES:
            raise ReproError(
                f"unknown worker_mode {self.worker_mode!r}; "
                f"choose from {WORKER_MODES}"
            )

    def solver_options(self) -> SolverOptions:
        """The profile's solver options with the parallel knobs folded in.

        ``workers``/``worker_mode`` live on the profile (they are an
        execution concern, like the kernel), but the solver consumes
        them — this is the single place they meet.
        """
        if self.workers is None and self.worker_mode == "threads":
            return self.solver
        import dataclasses

        return dataclasses.replace(
            self.solver,
            workers=(
                self.workers
                if self.workers is not None
                else self.solver.workers
            ),
            worker_mode=self.worker_mode,
        )

    @classmethod
    def coerce(
        cls, profile: Union["ExecutionProfile", str, None]
    ) -> "ExecutionProfile":
        """Normalize the ``profile=`` argument of the façade.

        ``None`` means defaults; a string names an engine profile (the
        most common single override); an :class:`ExecutionProfile`
        passes through.
        """
        if profile is None:
            return cls()
        if isinstance(profile, ExecutionProfile):
            return profile
        if isinstance(profile, str):
            return cls(engine=profile)
        raise ReproError(
            f"cannot build an ExecutionProfile from {profile!r}"
        )

    def replace(self, **changes) -> "ExecutionProfile":
        """A copy with the given fields changed."""
        import dataclasses

        return dataclasses.replace(self, **changes)

    def execution_limits(
        self, include_quantum: bool = True
    ) -> Optional[ExecutionLimits]:
        """This profile's limits as solver-level
        :class:`~repro.core.checkpoint.ExecutionLimits` (or None when
        unbounded).  ``include_quantum=False`` keeps only the deadline
        — operations without a continuation surface (``ask``,
        ``simulate``) are deadline-bounded but never suspend.
        """
        quantum = self.time_quantum_ms if include_quantum else None
        if quantum is None and self.deadline_ms is None:
            return None
        return ExecutionLimits(
            quantum_ms=quantum, deadline_ms=self.deadline_ms
        )

    def resolved_kernel(self) -> str:
        """The kernel queries will actually run on.

        Explicit ``kernel`` wins; otherwise the process-active kernel.
        The deprecated ``REPRO_KERNEL`` variable already shaped the
        process default at import time (that is the fallback), so here
        it only triggers the one-time :class:`DeprecationWarning` —
        it must not override a later, explicit
        :func:`~repro.bitvec.kernel.set_kernel` call.
        """
        if self.kernel is not None:
            return self.kernel
        if os.environ.get("REPRO_KERNEL"):
            deprecated_call(
                "env:REPRO_KERNEL",
                "the REPRO_KERNEL environment variable is deprecated; "
                "pass ExecutionProfile(kernel=...) or the --kernel CLI "
                "flag instead",
            )
        return active_kernel()

    @contextlib.contextmanager
    def kernel_context(self) -> Iterator[str]:
        """Activate this profile's kernel for the duration of a query.

        When no kernel is pinned and the deprecated environment
        variable is unset, the process-level selection (set via
        :func:`repro.bitvec.kernel.set_kernel`/``use_kernel``) is left
        untouched.
        """
        resolved = self.resolved_kernel()
        if resolved == active_kernel():
            yield resolved
        else:
            with use_kernel(resolved) as name:
                yield name
