"""Continuation tokens: portable handles to a suspended query.

When a :class:`~repro.api.database.Database` query exhausts its time
quantum mid-pruning, the partial
:class:`~repro.api.result.ResultSet` carries an opaque string token.
The token is self-contained — query text, per-branch solver
checkpoints, accumulated timing — and sealed:

* a **CRC32C** over the whole payload rejects corrupted or truncated
  tokens (:class:`~repro.errors.ContinuationError`);
* a 16-byte BLAKE2b **fingerprint** binds the token to the query text,
  the graph identity (node/triple counts and the sorted label set),
  and the trajectory-affecting solver options.  Resuming against a
  different database, a rebuilt snapshot, or changed solver strategy
  fails as *stale* instead of silently producing wrong answers.

The kernel and the storage backend are deliberately **excluded** from
the fingerprint: the three kernels are bit-identical and both
backends serve the same adjacency, so a token taken on an in-memory
batched session resumes on a snapshot-backed reference session.

Wire form (base64url, no padding)::

    "RPCT" | version u16 | reserved u16 | fingerprint[16] | body | crc32c u32
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import struct
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.checkpoint import SolverCheckpoint
from repro.core.solver import SolverOptions
from repro.errors import ContinuationError, SolverError
from repro.storage.checksum import crc32c

TOKEN_MAGIC = b"RPCT"
TOKEN_VERSION = 1
_PREFIX = struct.Struct("<4sHH16s")
# body: mode u8, advised u8, branch_index u32, n_states u32,
#       t_simulation f64, then per state: u32 length + checkpoint bytes,
#       then u32 query length + utf-8 query text
_BODY_HEADER = struct.Struct("<BBIId")
_MODES = ("pruned",)  # only the pruning stage suspends today


@dataclass
class SuspendedQuery:
    """Decoded token content, ready to hand back to the pipeline."""

    query_text: str
    branch_index: int
    branch_states: List[SolverCheckpoint]
    t_simulation: float
    mode: str = "pruned"
    advised: bool = False


def fingerprint(
    query_text: str, backend, solver: SolverOptions
) -> bytes:
    """16-byte identity of (query, graph, solver strategy).

    The graph contributes node/triple counts and the sorted label set
    — cheap, promotion-free, and different for any rebuilt or
    unrelated database.  Solver options contribute every knob that
    shapes the trajectory; ``degrade_on_fault`` is excluded (the
    degraded run is bit-identical by construction).
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(query_text.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(
        f"{backend.n_nodes}:{backend.n_triples}".encode("ascii")
    )
    for label in sorted(backend.labels):
        digest.update(b"\x00")
        digest.update(label.encode("utf-8"))
    digest.update(b"\x01")
    digest.update(
        f"{solver.initialization}:{solver.ordering}:"
        f"{solver.product}:{solver.seed}".encode("utf-8")
    )
    return digest.digest()


def encode_token(suspension: SuspendedQuery, fp: bytes) -> str:
    """Seal a suspension into the opaque base64url token string."""
    if suspension.mode not in _MODES:
        raise ContinuationError(
            f"cannot encode a continuation for mode {suspension.mode!r}"
        )
    states = [state.to_bytes() for state in suspension.branch_states]
    query_bytes = suspension.query_text.encode("utf-8")
    body = [
        _BODY_HEADER.pack(
            _MODES.index(suspension.mode),
            1 if suspension.advised else 0,
            suspension.branch_index,
            len(states),
            suspension.t_simulation,
        )
    ]
    for blob in states:
        body.append(struct.pack("<I", len(blob)))
        body.append(blob)
    body.append(struct.pack("<I", len(query_bytes)))
    body.append(query_bytes)
    payload = _PREFIX.pack(
        TOKEN_MAGIC, TOKEN_VERSION, 0, fp
    ) + b"".join(body)
    payload += struct.pack("<I", crc32c(payload))
    return base64.urlsafe_b64encode(payload).rstrip(b"=").decode("ascii")


def decode_token(token: str) -> Tuple[bytes, SuspendedQuery]:
    """Open a token; returns (fingerprint, suspension).

    Raises :class:`~repro.errors.ContinuationError` on anything that
    is not a byte-exact token this build wrote: bad base64, bad magic,
    unsupported version, CRC mismatch, truncation, or an embedded
    checkpoint that fails its own validation.
    """
    try:
        padded = token + "=" * (-len(token) % 4)
        payload = base64.urlsafe_b64decode(padded.encode("ascii"))
    except (binascii.Error, UnicodeEncodeError, ValueError) as error:
        raise ContinuationError(
            f"continuation token is not valid base64: {error}"
        ) from None
    if len(payload) < _PREFIX.size + _BODY_HEADER.size + 4:
        raise ContinuationError("continuation token truncated")
    body, (crc,) = payload[:-4], struct.unpack("<I", payload[-4:])
    if crc32c(body) != crc:
        raise ContinuationError(
            "continuation token failed its CRC32C (corrupt or edited)"
        )
    magic, version, _reserved, fp = _PREFIX.unpack_from(body, 0)
    if magic != TOKEN_MAGIC:
        raise ContinuationError("bad continuation token magic")
    if version != TOKEN_VERSION:
        raise ContinuationError(
            f"unsupported continuation token version {version}"
        )
    offset = _PREFIX.size
    mode_code, advised, branch_index, n_states, t_simulation = (
        _BODY_HEADER.unpack_from(body, offset)
    )
    offset += _BODY_HEADER.size
    if mode_code >= len(_MODES):
        raise ContinuationError(
            f"unknown continuation mode code {mode_code}"
        )
    states: List[SolverCheckpoint] = []
    try:
        for _ in range(n_states):
            if offset + 4 > len(body):
                raise ContinuationError("continuation token truncated")
            (length,) = struct.unpack_from("<I", body, offset)
            offset += 4
            if offset + length > len(body):
                raise ContinuationError("continuation token truncated")
            states.append(
                SolverCheckpoint.from_bytes(body[offset:offset + length])
            )
            offset += length
        if offset + 4 > len(body):
            raise ContinuationError("continuation token truncated")
        (query_len,) = struct.unpack_from("<I", body, offset)
        offset += 4
        if offset + query_len != len(body):
            raise ContinuationError(
                "continuation token length mismatch"
            )
        query_text = body[offset:offset + query_len].decode("utf-8")
    except SolverError as error:
        raise ContinuationError(
            f"continuation token carries a bad checkpoint: {error}"
        ) from None
    except UnicodeDecodeError:
        raise ContinuationError(
            "continuation token query text is not valid UTF-8"
        ) from None
    return fp, SuspendedQuery(
        query_text=query_text,
        branch_index=int(branch_index),
        branch_states=states,
        t_simulation=float(t_simulation),
        mode=_MODES[mode_code],
        advised=bool(advised),
    )
