"""The storage contract behind a :class:`~repro.api.database.Database`.

:class:`GraphBackend` is the single protocol the query layers consume:

* the SOI solver and the pruning stage read adjacency through
  :attr:`GraphBackend.graph` (``matrices()`` / ``n_nodes`` /
  ``node_name`` / ``nodes_bitset`` ...);
* the join engine reads dictionary-encoded indexes through
  :meth:`GraphBackend.triple_store`;
* reporting reads :meth:`GraphBackend.residency` and
  :meth:`GraphBackend.stats`.

Two implementations cover the reproduction's storage modes —
:class:`InMemoryBackend` over a :class:`~repro.graph.database.GraphDatabase`
and :class:`SnapshotBackend` over the on-disk snapshot store
(:class:`~repro.storage.SnapshotReader` + tiered residency).  Because
both satisfy the same contract, :class:`~repro.pipeline.PruningPipeline`
and :class:`~repro.store.engine.QueryEngine` no longer special-case
memory vs snapshot, and future connectors (sharded snapshots, a
mutable overlay, a remote store) slot in without touching the query
layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import (
    Dict,
    Hashable,
    Iterator,
    Optional,
    Protocol,
    Set,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.graph.database import GraphDatabase
from repro.storage.reader import SnapshotReader
from repro.storage.tiered import ResidencyReport, TieredGraphView
from repro.store.triple_store import TripleStore

NameTriple = Tuple[Hashable, str, Hashable]


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can do, declared instead of duck-typed.

    The façade gates operations on these flags — writes need
    ``writable``, in-process operations (``simulate``, ``explain``,
    ``benchmark``, ``advise``) need ``not remote`` — and raises a
    typed :class:`~repro.errors.UnsupportedOperationError` when the
    capability is missing, replacing the old ad-hoc
    ``hasattr(backend, "remote_query")`` probes.
    """

    #: Accepts :meth:`add`/:meth:`retract` delta batches.
    writable: bool = False
    #: Backed by an on-disk snapshot (directly or through an overlay).
    snapshot_backed: bool = False
    #: Executes queries in another process; the engine is not local.
    remote: bool = False


def backend_capabilities(backend) -> BackendCapabilities:
    """A backend's declared capabilities, inferred for legacy ones.

    Third-party backends predating :meth:`GraphBackend.capabilities`
    fall back to the old duck-typed probe: a ``remote_query`` method
    marks a remote connector; everything else is a local read-only
    store.
    """
    probe = getattr(backend, "capabilities", None)
    if callable(probe):
        return probe()
    return BackendCapabilities(
        remote=callable(getattr(backend, "remote_query", None))
    )


@runtime_checkable
class GraphBackend(Protocol):
    """What a storage connector must provide to power a session."""

    #: Stable connector kind (``"memory"``, ``"snapshot"``, ...).
    kind: str

    def capabilities(self) -> BackendCapabilities:
        """What this backend supports; the façade gates on the flags
        instead of probing attributes."""
        ...

    @property
    def graph(self):
        """Solver-facing adjacency view: an object with the
        :class:`~repro.graph.graph.Graph` read interface
        (``n_nodes``, ``labels``, ``matrices()``, ``node_name``,
        ``node_index``, ``has_node``, ``nodes_bitset``)."""
        ...

    def triple_store(self) -> TripleStore:
        """Dictionary-encoded indexes for the join engine (may be
        built lazily on first call)."""
        ...

    @property
    def n_nodes(self) -> int: ...

    @property
    def n_triples(self) -> int: ...

    @property
    def labels(self) -> Set[str]: ...

    def triples(self) -> Iterator[NameTriple]:
        """Iterate all name-level triples (no residency side effects)."""
        ...

    def residency(self) -> Optional[ResidencyReport]:
        """Hot/cold residency of the backing storage, or ``None`` when
        the notion does not apply (fully in-memory)."""
        ...

    def set_residency_budget(self, budget: Optional[int]) -> None:
        """Arm (or disarm, with ``None``) the hard ceiling on resident
        packed bytes, so promotions during the next operation respect
        it.  A no-op for backends without a residency notion."""
        ...

    def enforce_residency_budget(self, budget: Optional[int]) -> int:
        """Demote least-recently-touched labels until resident packed
        bytes fit the budget; returns how many labels were demoted
        (0 for backends without a residency notion).

        ``budget=None`` means "keep whatever ceiling is currently
        armed" (via :meth:`set_residency_budget`), NOT "unbounded":
        with no ceiling armed either, the call demotes nothing.
        Implementations must follow this so backends stay
        interchangeable under one call sequence."""
        ...

    def stats(self) -> Dict[str, object]:
        """Flat, JSON-friendly description of the backend."""
        ...

    def close(self) -> None: ...


class InMemoryBackend:
    """Backend over a fully materialized :class:`GraphDatabase`.

    The join-engine store is built lazily on first
    :meth:`triple_store` call, so solver-only sessions (``simulate``)
    never pay for the dictionary-encoded indexes.  ``graph_db`` may be
    any object with the :class:`~repro.graph.graph.Graph` read
    interface and ``triples()`` (a :class:`GraphDatabase`, a
    :class:`~repro.storage.TieredGraphView`, ...).
    """

    kind = "memory"

    def __init__(self, graph_db=None, store: Optional[TripleStore] = None):
        if graph_db is None:
            graph_db = (
                store.to_graph_database()
                if store is not None else GraphDatabase()
            )
        self._graph = graph_db
        self._store = store
        # Mark the database as session-owned so direct GraphDatabase
        # mutation (the pre-write-API idiom) can warn once and point at
        # Database.add/retract.  Foreign graph-likes (TieredGraphView,
        # mocks with __slots__) simply skip the marker.
        try:
            graph_db._session_attached = True
        except AttributeError:
            pass

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities()

    @property
    def graph(self):
        return self._graph

    def triple_store(self) -> TripleStore:
        if self._store is None:
            self._store = TripleStore.from_graph_database(self._graph)
        return self._store

    @property
    def n_nodes(self) -> int:
        return self._graph.n_nodes

    @property
    def n_triples(self) -> int:
        return self._graph.n_triples

    @property
    def labels(self) -> Set[str]:
        return set(self._graph.labels)

    def triples(self) -> Iterator[NameTriple]:
        return self._graph.triples()

    def residency(self) -> Optional[ResidencyReport]:
        return None

    def set_residency_budget(self, budget: Optional[int]) -> None:
        return None  # no residency notion to bound

    def enforce_residency_budget(self, budget: Optional[int]) -> int:
        return 0  # nothing demotable

    def stats(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "n_triples": self.n_triples,
            "n_nodes": self.n_nodes,
            "n_labels": len(self.labels),
        }

    def close(self) -> None:  # nothing to release
        return None

    def __repr__(self) -> str:
        return f"InMemoryBackend({self._graph!r})"


class SnapshotBackend:
    """Backend over an on-disk snapshot (``repro-snap/v1``).

    The solver side is a :class:`TieredGraphView` — hot labels
    resident from open, cold labels promoted on first query touch.
    The join-engine store is a
    :class:`~repro.store.lazy.LazySnapshotStore`: constructing it
    adopts the dictionaries and block-table statistics in
    O(dictionary) and fills pso/pos indexes one predicate at a time
    on first engine touch, so even sessions that *do* join open in
    milliseconds and only decode the predicates their queries use.
    :meth:`stats` reports ``join_index_fills`` next to the residency
    promotion counters.
    """

    kind = "snapshot"

    def __init__(self, source: Union[str, Path, SnapshotReader]):
        reader = (
            source if isinstance(source, SnapshotReader)
            else SnapshotReader(source)
        )
        self.reader = reader
        self.path: Path = reader.path
        self._view = TieredGraphView(reader)
        self._store: Optional[TripleStore] = None

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(snapshot_backed=True)

    @property
    def graph(self) -> TieredGraphView:
        return self._view

    def batched_blocks(self):
        """The tiered view's concatenated multi-label block set
        (``batched`` kernel); promoted labels append without
        re-stacking resident ones."""
        return self._view.batched_blocks()

    def triple_store(self) -> TripleStore:
        if self._store is None:
            from repro.store.lazy import LazySnapshotStore

            self._store = LazySnapshotStore(self.reader)
        return self._store

    @property
    def n_nodes(self) -> int:
        return self.reader.n_nodes

    @property
    def n_triples(self) -> int:
        return self.reader.n_triples

    @property
    def labels(self) -> Set[str]:
        return self._view.labels

    def triples(self) -> Iterator[NameTriple]:
        return self.reader.iter_triples()

    def residency(self) -> ResidencyReport:
        return self._view.residency()

    def set_residency_budget(self, budget: Optional[int]) -> None:
        """Arm the tiered view's hard ceiling so promotions during the
        next solve shed least-recently-touched labels on the spot."""
        self._view.residency_budget = budget

    def enforce_residency_budget(self, budget: Optional[int]) -> int:
        """LRU-demote down to the budget and compact the batched
        block; returns how many labels were demoted."""
        return self._view.enforce_budget(budget)

    def stats(self) -> Dict[str, object]:
        residency = self.residency()
        fills = getattr(self._store, "fill_count", 0)
        filled = getattr(self._store, "filled_predicates", frozenset())
        return {
            "kind": self.kind,
            "path": str(self.path),
            "join_index_fills": fills,
            "join_filled_predicates": len(filled),
            "n_triples": self.n_triples,
            "n_nodes": self.n_nodes,
            "n_labels": len(self.labels),
            "hot_labels": residency.hot_labels,
            "cold_labels": residency.cold_labels,
            "promotions": residency.promotions,
            "demotions": residency.demotions,
            "resident_labels": residency.resident_labels,
            "resident_bytes": residency.resident_bytes,
            "on_disk_bytes": residency.on_disk_bytes,
            "batched_entries": (
                0 if self._view._batched is None
                else self._view._batched.n_entries
            ),
            "batched_bytes": (
                0 if self._view._batched is None
                else self._view._batched.nbytes
            ),
        }

    def close(self) -> None:
        self.reader.close()

    def __repr__(self) -> str:
        return f"SnapshotBackend({self.path.name!r}, {self._view!r})"
