"""Public session API: the `Database` façade over pluggable backends.

Entry points::

    Database.open("data.snap")              # snapshot store session
    Database.in_memory(graph_db)            # in-memory session
    Database.writable()                     # mutable overlay session
    Database.edit("data.snap")              # edit a snapshot (overlay)
    Database.from_triples([...])            # build from triples
    Database.from_ntriples("data.nt")       # parse N-Triples
    Database.from_workload("lubm", scale=2) # synthetic workloads

Sessions expose ``query()`` / ``ask()`` / ``explain()`` /
``simulate()`` / ``stats()``; writable sessions add ``add()`` /
``retract()`` / ``compact()``; execution knobs travel in an
:class:`ExecutionProfile`; storage connectors implement the
:class:`GraphBackend` protocol and declare what they support via
:class:`BackendCapabilities`.
"""

from repro.api.backend import (
    BackendCapabilities,
    GraphBackend,
    InMemoryBackend,
    SnapshotBackend,
    backend_capabilities,
)
from repro.api.database import (
    Database,
    DatabaseStats,
    clear_open_cache,
)
from repro.api.profile import PRUNING_MODES, ExecutionProfile
from repro.api.result import (
    BranchSimulation,
    PruneSummary,
    ResultSet,
    SimulationOutcome,
)

__all__ = [
    "Database",
    "DatabaseStats",
    "ExecutionProfile",
    "PRUNING_MODES",
    "GraphBackend",
    "BackendCapabilities",
    "backend_capabilities",
    "InMemoryBackend",
    "SnapshotBackend",
    "ResultSet",
    "PruneSummary",
    "SimulationOutcome",
    "BranchSimulation",
    "clear_open_cache",
]
