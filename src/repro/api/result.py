"""Result objects returned by the :class:`~repro.api.database.Database`.

:class:`ResultSet` is a lazily-decoded view over a query execution:
solution modifiers (ORDER BY / DISTINCT / LIMIT) are applied on first
access, and id-to-name decoding happens row by row during iteration,
so consuming the first k rows of a large result never decodes the
rest.  Decoded rows are plain ``{variable_name: value}`` dicts —
independent of which backend produced them, which is what makes
answers comparable across storage modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.core.solver import SolverReport
from repro.errors import ReproError
from repro.store.engine import QueryResult

#: One decoded solution: variable name (no ``?``) -> node name/Literal.
Row = Dict[str, Hashable]


@dataclass(frozen=True)
class PruneSummary:
    """What the dual-simulation stage did for one query."""

    triples_total: int
    triples_after: int
    rounds: int
    t_simulation: float

    @property
    def ratio(self) -> float:
        """Fraction of the database disqualified (0.0 when empty)."""
        if self.triples_total == 0:
            return 0.0
        return 1.0 - self.triples_after / self.triples_total


class ResultSet:
    """Streaming, lazily-decoded solutions of one query execution.

    Iterate to get decoded rows one at a time; ``len()`` / ``rows()``
    force the full set.  ``mode`` records how the query actually ran
    (``"full"`` or ``"pruned"``), ``advised`` whether the auto mode's
    advisor made that call, and ``pruning`` carries the prune-stage
    numbers when pruning ran.

    A quantum-bounded query that suspended mid-execution comes back
    **partial**: ``complete`` is False, there are no rows yet, and
    ``continuation`` holds the opaque token to hand to
    :meth:`~repro.api.database.Database.resume`.  Touching the rows of
    a partial result raises instead of silently answering empty.
    """

    def __init__(
        self,
        result: Optional[QueryResult],
        mode: str,
        pruning: Optional[PruneSummary] = None,
        advised: bool = False,
        complete: bool = True,
        continuation: Optional[str] = None,
    ):
        if complete and result is None:
            raise ReproError("a complete ResultSet needs a result")
        if not complete and continuation is None:
            raise ReproError(
                "a partial ResultSet needs a continuation token"
            )
        self._result = result
        self.mode = mode
        self.pruning = pruning
        self.advised = advised
        self.complete = complete
        self.continuation = continuation
        #: The query's :class:`~repro.obs.trace.Tracer` when tracing
        #: was requested (``Database.query(..., trace=True)`` or
        #: ``ExecutionProfile(trace=True)``); ``None`` otherwise.
        self.trace = None
        self._solutions = None  # projected/ordered, still id-encoded

    # -- lazy plumbing ----------------------------------------------------

    def _require_complete(self) -> QueryResult:
        if self._result is None:
            raise ReproError(
                "query suspended before producing rows; resume it via "
                "Database.resume(result.continuation)"
            )
        return self._result

    def _projected(self):
        if self._solutions is None:
            self._solutions = self._require_complete().solutions
        return self._solutions

    def __iter__(self) -> Iterator[Row]:
        decode = self._require_complete().store.nodes.decode
        for mu in self._projected():
            yield {
                var.name: decode(value)
                for var, value in sorted(
                    mu.items(), key=lambda kv: kv[0].name
                )
            }

    def __len__(self) -> int:
        return len(self._projected())

    def __bool__(self) -> bool:
        return bool(self._projected())

    # -- materializing accessors -----------------------------------------

    def rows(self) -> List[Row]:
        """All decoded rows (forces full decoding)."""
        return list(self)

    def first(self) -> Optional[Row]:
        """The first decoded row, or ``None`` when empty."""
        return next(iter(self), None)

    def as_set(self) -> Set[Tuple[Tuple[str, Hashable], ...]]:
        """Canonical, order-insensitive, backend-independent form —
        two executions answered identically iff their ``as_set()``
        values are equal."""
        return self._require_complete().as_set()

    @property
    def variables(self) -> Tuple[str, ...]:
        """Variable names bound in at least one solution, sorted."""
        names: Set[str] = set()
        for mu in self._projected():
            names.update(var.name for var in mu)
        return tuple(sorted(names))

    @property
    def elapsed(self) -> float:
        """Join-engine evaluation time in seconds."""
        return self._require_complete().elapsed

    @property
    def raw(self) -> QueryResult:
        """The underlying engine result (id-encoded, store-bound)."""
        return self._require_complete()

    def __repr__(self) -> str:
        if not self.complete:
            return (
                f"ResultSet(partial, mode={self.mode!r}, "
                f"continuation={self.continuation[:16]}...)"
            )
        pruned = (
            f", pruned {self.pruning.triples_total}->"
            f"{self.pruning.triples_after}"
            if self.pruning is not None else ""
        )
        return (
            f"ResultSet({len(self)} solutions, mode={self.mode!r}"
            f"{pruned})"
        )


@dataclass
class BranchSimulation:
    """Largest dual simulation of one union-free branch."""

    index: int
    soi: str                       # human-readable SOI (Fig. 3 style)
    report: SolverReport
    #: variable name (no ``?``) -> candidate node names, sorted.
    candidates: Dict[str, Tuple[Hashable, ...]] = field(
        default_factory=dict
    )

    @property
    def is_empty(self) -> bool:
        return all(not names for names in self.candidates.values())


@dataclass
class SimulationOutcome:
    """`Database.simulate()` result: one entry per union branch."""

    branches: List[BranchSimulation]

    @property
    def is_empty(self) -> bool:
        """True iff every branch's simulation is empty — the paper's
        Sect. 5 fast path ('no further query evaluation needed')."""
        return all(branch.is_empty for branch in self.branches)

    def candidates(self, variable: str) -> Tuple[Hashable, ...]:
        """Union of a variable's candidates across branches."""
        names: Set[Hashable] = set()
        for branch in self.branches:
            names.update(branch.candidates.get(variable, ()))
        return tuple(sorted(names, key=str))
