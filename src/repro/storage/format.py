"""Binary layout of the on-disk snapshot format (``repro-snap`` v1-v3).

A snapshot is a single file holding a dictionary-encoded graph
database in an mmap-friendly layout: a fixed header, the two term
dictionaries (nodes and predicates), and one payload *block* per
(label, direction) adjacency matrix.  Every block is stored in one of
two encodings, chosen per label by the writer's density heuristic:

* ``dense``  — the packed ``(n_rows, n_words)`` ``uint64`` row block
  of :class:`~repro.bitvec.matrix.AdjacencyMatrix`, preceded by the
  ``int64`` node ids of its rows.  A reader can wrap these bytes into
  NumPy views with zero copies, which is what makes dense labels
  "hot": they are solver-ready the moment the file is open.
* ``gap``    — per-row gap-length runs (:mod:`repro.bitvec.gap`):
  row node ids, a ``uint64`` offsets array (in run elements), and the
  concatenated ``uint32`` runs.  Gap labels are "cold": they cost a
  decode (:meth:`GapEncodedMatrix.to_adjacency`) on first touch but
  occupy only their compressed bytes until then — the paper's
  35 GB vs 23 GB residency discussion (Sect. 3.3).

File layout (all sections and payloads 8-byte aligned)::

    header | nodes dictionary | predicates dictionary | block table | payloads

Integers are little-endian.  The v1 header is::

    magic     8s   b"REPROSNP"
    version   u32  1
    flags     u32  reserved, 0
    n_nodes, n_predicates, n_triples, n_blocks          4 x u64
    nodes_off, nodes_len, preds_off, preds_len          4 x u64
    block_table_off                                     u64

Format **v2** (the current writer output) appends one field to the
header — ``checksum_table_off`` (u64) — and one trailing section: a
per-section CRC32C checksum table covering every byte of the file::

    header | nodes | predicates | block table | payloads | checksum table

The table is::

    magic     4s   b"CRCS"
    algorithm u16  1 = CRC32C (Castagnoli)
    reserved  u16  0
    n_entries u64
    crcs      n_entries x u32    header, nodes dictionary, predicates
                                 dictionary, block table, then one per
                                 payload in block-table order
    table_crc u32  CRC32C of the table bytes above

v2 readers verify the metadata sections eagerly at open and each
payload lazily on first access; a mismatch raises
:class:`~repro.errors.SnapshotCorruptError`.  v1 files carry no table
(``flags`` bit 0 clear) and stay readable, unchecksummed.

Format **v3** (written on request by ``repro db build --shards N``)
splits the block payloads across ``N`` *shard files* keyed by label
hash — ``<snapshot>.shard0`` .. ``<snapshot>.shardN-1`` next to the
manifest — so parallel workers can memory-map disjoint subsets of the
graph.  The v3 header appends ``n_shards`` (u64) after
``checksum_table_off`` and sets ``flags`` bit 1
(:data:`FLAG_SHARDED`).  The manifest keeps the metadata sections
(header, dictionaries, block table) and a checksum table covering
*only* those four sections; each shard file carries its **own**
trailing checksum table covering the shard header and every payload
it holds, so a single shard verifies in isolation.  A shard file is::

    shard header | payloads (8-aligned) | checksum table

with a 32-byte shard header::

    magic       8s   b"REPROSHD"
    version     u32  3
    shard_index u32  which shard this file is
    n_payloads  u64  blocks stored here
    table_off   u64  absolute offset of the shard's checksum table

Both directions of a label land in the same shard
(:func:`shard_of_label` — a CRC32C of the label name modulo
``n_shards``, stable across processes and runs), preserving the
per-(label, direction) block-table boundaries as natural shard
boundaries.  A v3 manifest with ``n_shards=0`` is a plain single-file
snapshot, identical in layout to v2 apart from the longer header.

Each block-table entry is 40 bytes::

    label_id  u32   index into the predicate dictionary
    direction u8    0 = forward, 1 = backward
    encoding  u8    0 = dense, 1 = gap
    shard     u16   shard file index (0, and ignored, unless sharded)
    n_rows, n_edges, payload_off, payload_len           4 x u64

``payload_off`` is an absolute offset into the manifest for
single-file snapshots and into shard file ``shard`` for sharded
ones.

Terms are serialized as a tag byte, a ``u32`` byte length, and a
UTF-8 payload.  The tag records whether the term is a plain node name
or a :class:`~repro.graph.database.Literal` (and the literal's Python
type), so literal-ness survives the round trip without a separate
bitmap.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Hashable, List, Tuple

from repro.errors import SnapshotCorruptError, SnapshotError
from repro.graph.database import Literal
from repro.storage.checksum import crc32c

MAGIC = b"REPROSNP"
VERSION = 2
VERSION_V1 = 1
VERSION_V3 = 3
SUPPORTED_VERSIONS = (VERSION_V1, VERSION, VERSION_V3)

HEADER = struct.Struct("<8sII9Q")       # v1 (no checksum_table_off)
HEADER_V2 = struct.Struct("<8sII10Q")
HEADER_V3 = struct.Struct("<8sII11Q")   # v2 + n_shards
BLOCK_ENTRY = struct.Struct("<IBBHQQQQ")

#: Header ``flags`` bit 0: the file carries a checksum table.
FLAG_CHECKSUMS = 1
#: Header ``flags`` bit 1 (v3): payloads live in shard files.
FLAG_SHARDED = 2

CHECKSUM_MAGIC = b"CRCS"
CHECKSUM_ALGO_CRC32C = 1
CHECKSUM_HEADER = struct.Struct("<4sHHQ")

SHARD_MAGIC = b"REPROSHD"
SHARD_HEADER = struct.Struct("<8sIIQQ")

#: Hard cap on shard files per snapshot (the block entry's shard
#: field is a u16; anything near it is a misconfiguration anyway).
MAX_SHARDS = 4096

DIRECTION_FORWARD = 0
DIRECTION_BACKWARD = 1
DIRECTIONS = ("forward", "backward")

ENCODING_DENSE = 0
ENCODING_GAP = 1
ENCODINGS = ("dense", "gap")

_TAG_STR = 0
_TAG_LIT_STR = 1
_TAG_LIT_INT = 2
_TAG_LIT_FLOAT = 3
_TAG_LIT_BOOL = 4

_ALIGN = 8


def pad8(n: int) -> int:
    """Bytes needed to round ``n`` up to the next 8-byte boundary."""
    return (-n) % _ALIGN


@dataclass(frozen=True)
class Header:
    """Decoded fixed header of a snapshot file."""

    n_nodes: int
    n_predicates: int
    n_triples: int
    n_blocks: int
    nodes_off: int
    nodes_len: int
    preds_off: int
    preds_len: int
    block_table_off: int
    version: int = VERSION
    checksum_table_off: int = 0   # 0 for v1 (no table)
    n_shards: int = 0             # v3 only; 0 = single-file layout

    @property
    def size(self) -> int:
        if self.version == VERSION_V1:
            return HEADER.size
        if self.version == VERSION_V3:
            return HEADER_V3.size
        return HEADER_V2.size

    @property
    def has_checksums(self) -> bool:
        return self.checksum_table_off != 0

    @property
    def sharded(self) -> bool:
        return self.n_shards > 0

    def pack(self) -> bytes:
        if self.version == VERSION_V1:
            return HEADER.pack(
                MAGIC, VERSION_V1, 0,
                self.n_nodes, self.n_predicates, self.n_triples,
                self.n_blocks,
                self.nodes_off, self.nodes_len, self.preds_off,
                self.preds_len,
                self.block_table_off,
            )
        flags = FLAG_CHECKSUMS if self.has_checksums else 0
        if self.version == VERSION_V3:
            if self.sharded:
                flags |= FLAG_SHARDED
            return HEADER_V3.pack(
                MAGIC, VERSION_V3, flags,
                self.n_nodes, self.n_predicates, self.n_triples,
                self.n_blocks,
                self.nodes_off, self.nodes_len, self.preds_off,
                self.preds_len,
                self.block_table_off, self.checksum_table_off,
                self.n_shards,
            )
        return HEADER_V2.pack(
            MAGIC, VERSION, flags,
            self.n_nodes, self.n_predicates, self.n_triples, self.n_blocks,
            self.nodes_off, self.nodes_len, self.preds_off, self.preds_len,
            self.block_table_off, self.checksum_table_off,
        )

    @classmethod
    def unpack(cls, buffer) -> "Header":
        if len(buffer) < HEADER.size:
            raise SnapshotError(
                f"truncated snapshot: {len(buffer)} bytes, "
                f"header needs {HEADER.size}"
            )
        magic, version = struct.unpack_from("<8sI", buffer, 0)
        if magic != MAGIC:
            raise SnapshotError(
                f"not a repro snapshot (bad magic {magic!r})"
            )
        if version not in SUPPORTED_VERSIONS:
            raise SnapshotError(
                f"unsupported snapshot version {version} "
                f"(this build reads versions {SUPPORTED_VERSIONS})"
            )
        checksum_table_off = 0
        n_shards = 0
        if version == VERSION_V1:
            (_magic, _version, _flags, n_nodes, n_predicates, n_triples,
             n_blocks, nodes_off, nodes_len, preds_off, preds_len,
             block_table_off) = HEADER.unpack_from(buffer, 0)
        elif version == VERSION_V3:
            if len(buffer) < HEADER_V3.size:
                raise SnapshotError(
                    f"truncated snapshot: {len(buffer)} bytes, "
                    f"v3 header needs {HEADER_V3.size}"
                )
            (_magic, _version, flags, n_nodes, n_predicates, n_triples,
             n_blocks, nodes_off, nodes_len, preds_off, preds_len,
             block_table_off, checksum_table_off,
             n_shards) = HEADER_V3.unpack_from(buffer, 0)
            if bool(flags & FLAG_SHARDED) != (n_shards > 0):
                raise SnapshotError(
                    f"inconsistent v3 header: flags {flags:#x} vs "
                    f"n_shards {n_shards}"
                )
            if n_shards > MAX_SHARDS:
                raise SnapshotError(
                    f"snapshot claims {n_shards} shards "
                    f"(limit {MAX_SHARDS})"
                )
        else:
            if len(buffer) < HEADER_V2.size:
                raise SnapshotError(
                    f"truncated snapshot: {len(buffer)} bytes, "
                    f"v2 header needs {HEADER_V2.size}"
                )
            (_magic, _version, _flags, n_nodes, n_predicates, n_triples,
             n_blocks, nodes_off, nodes_len, preds_off, preds_len,
             block_table_off,
             checksum_table_off) = HEADER_V2.unpack_from(buffer, 0)
        return cls(
            n_nodes=n_nodes, n_predicates=n_predicates,
            n_triples=n_triples, n_blocks=n_blocks,
            nodes_off=nodes_off, nodes_len=nodes_len,
            preds_off=preds_off, preds_len=preds_len,
            block_table_off=block_table_off,
            version=version, checksum_table_off=checksum_table_off,
            n_shards=n_shards,
        )


@dataclass(frozen=True)
class BlockEntry:
    """One block-table row: where one (label, direction) matrix lives."""

    label_id: int
    direction: int   # DIRECTION_FORWARD / DIRECTION_BACKWARD
    encoding: int    # ENCODING_DENSE / ENCODING_GAP
    n_rows: int
    n_edges: int
    payload_off: int
    payload_len: int
    shard: int = 0   # shard file index; 0 and ignored when single-file

    def pack(self) -> bytes:
        return BLOCK_ENTRY.pack(
            self.label_id, self.direction, self.encoding, self.shard,
            self.n_rows, self.n_edges, self.payload_off, self.payload_len,
        )

    @classmethod
    def unpack_from(cls, buffer, offset: int) -> "BlockEntry":
        (label_id, direction, encoding, shard,
         n_rows, n_edges, payload_off, payload_len) = BLOCK_ENTRY.unpack_from(
            buffer, offset
        )
        if direction not in (DIRECTION_FORWARD, DIRECTION_BACKWARD):
            raise SnapshotError(f"bad block direction {direction}")
        if encoding not in (ENCODING_DENSE, ENCODING_GAP):
            raise SnapshotError(f"bad block encoding {encoding}")
        return cls(
            label_id=label_id, direction=direction, encoding=encoding,
            n_rows=n_rows, n_edges=n_edges,
            payload_off=payload_off, payload_len=payload_len,
            shard=shard,
        )


# -- term (de)serialization -------------------------------------------------


def encode_term(term: Hashable) -> bytes:
    """Serialize one node/predicate term (tag, u32 length, UTF-8)."""
    if isinstance(term, Literal):
        value = term.value
        if isinstance(value, bool):      # before int: bool is an int
            tag, payload = _TAG_LIT_BOOL, (b"1" if value else b"0")
        elif isinstance(value, int):
            tag, payload = _TAG_LIT_INT, str(value).encode("utf-8")
        elif isinstance(value, float):
            tag, payload = _TAG_LIT_FLOAT, repr(value).encode("utf-8")
        elif isinstance(value, str):
            tag, payload = _TAG_LIT_STR, value.encode("utf-8")
        else:
            raise SnapshotError(
                "cannot serialize literal of type "
                f"{type(value).__name__}: {value!r}"
            )
    elif isinstance(term, str):
        tag, payload = _TAG_STR, term.encode("utf-8")
    else:
        raise SnapshotError(
            "cannot serialize node name of type "
            f"{type(term).__name__}: {term!r} (use str or Literal)"
        )
    return struct.pack("<BI", tag, len(payload)) + payload


def decode_terms(buffer: bytes, count: int) -> List[Hashable]:
    """Inverse of a sequence of :func:`encode_term` calls."""
    terms: List[Hashable] = []
    offset = 0
    for _ in range(count):
        if offset + 5 > len(buffer):
            raise SnapshotError("truncated term dictionary")
        tag, length = struct.unpack_from("<BI", buffer, offset)
        offset += 5
        if offset + length > len(buffer):
            raise SnapshotError("truncated term dictionary payload")
        payload = bytes(buffer[offset:offset + length])
        offset += length
        text = payload.decode("utf-8")
        if tag == _TAG_STR:
            terms.append(text)
        elif tag == _TAG_LIT_STR:
            terms.append(Literal(text))
        elif tag == _TAG_LIT_INT:
            terms.append(Literal(int(text)))
        elif tag == _TAG_LIT_FLOAT:
            terms.append(Literal(float(text)))
        elif tag == _TAG_LIT_BOOL:
            terms.append(Literal(payload == b"1"))
        else:
            raise SnapshotError(f"unknown term tag {tag}")
    return terms


def encode_term_section(terms) -> bytes:
    """Serialize a whole dictionary section (padded to 8 bytes)."""
    body = b"".join(encode_term(t) for t in terms)
    return body + b"\x00" * pad8(len(body))


def pack_block_table(entries: Tuple[BlockEntry, ...] | List[BlockEntry]) -> bytes:
    body = b"".join(entry.pack() for entry in entries)
    return body + b"\x00" * pad8(len(body))


# -- checksum table (v2) ----------------------------------------------------


def pack_checksum_table(crcs: List[int]) -> bytes:
    """Serialize the v2 checksum table (self-checksummed, unpadded —
    the table sits at end of file, so every byte of the file ends up
    covered by exactly one CRC)."""
    body = CHECKSUM_HEADER.pack(
        CHECKSUM_MAGIC, CHECKSUM_ALGO_CRC32C, 0, len(crcs)
    )
    body += struct.pack(f"<{len(crcs)}I", *crcs)
    return body + struct.pack("<I", crc32c(body))


def unpack_checksum_table(buffer, offset: int) -> List[int]:
    """Parse and self-verify a checksum table; the per-section CRCs.

    Raises :class:`SnapshotCorruptError` when the table itself is
    truncated or fails its own CRC — a corrupt table must not look
    like a clean bill of health for the sections it covers.
    """
    end = offset + CHECKSUM_HEADER.size
    if end > len(buffer):
        raise SnapshotCorruptError(
            "checksum table truncated", section="checksum table"
        )
    magic, algorithm, _reserved, n_entries = CHECKSUM_HEADER.unpack_from(
        buffer, offset
    )
    if magic != CHECKSUM_MAGIC:
        raise SnapshotCorruptError(
            f"bad checksum table magic {magic!r}",
            section="checksum table",
        )
    if algorithm != CHECKSUM_ALGO_CRC32C:
        raise SnapshotCorruptError(
            f"unknown checksum algorithm {algorithm}",
            section="checksum table",
        )
    body_end = end + 4 * n_entries
    if body_end + 4 > len(buffer):
        raise SnapshotCorruptError(
            "checksum table truncated", section="checksum table"
        )
    stored = struct.unpack_from("<I", buffer, body_end)[0]
    if crc32c(buffer[offset:body_end]) != stored:
        raise SnapshotCorruptError(
            "checksum table failed its own CRC32C",
            section="checksum table",
        )
    return list(struct.unpack_from(f"<{n_entries}I", buffer, end))


# -- shard files (v3) --------------------------------------------------------


def shard_of_label(label: Hashable, n_shards: int) -> int:
    """Which shard file holds the payloads of ``label``.

    CRC32C of the label's serialized term, modulo ``n_shards`` — stable
    across processes and Python hash randomization, so a fork worker
    computes the same placement the writer did.  Both directions of a
    label share its shard by construction.
    """
    if n_shards <= 0:
        raise SnapshotError(f"shard_of_label needs n_shards >= 1, got {n_shards}")
    return crc32c(encode_term(label)) % n_shards


def shard_path(manifest_path, index: int) -> Path:
    """Path of shard file ``index`` next to the manifest."""
    path = Path(manifest_path)
    return path.parent / f"{path.name}.shard{index}"


def pack_shard_header(shard_index: int, n_payloads: int,
                      table_off: int) -> bytes:
    return SHARD_HEADER.pack(
        SHARD_MAGIC, VERSION_V3, shard_index, n_payloads, table_off
    )


def unpack_shard_header(buffer, shard_index: int) -> Tuple[int, int]:
    """Validate a shard file's header; returns ``(n_payloads, table_off)``.

    ``shard_index`` is the index the manifest expects at this path; a
    mismatch means shard files were shuffled or overwritten.
    """
    if len(buffer) < SHARD_HEADER.size:
        raise SnapshotCorruptError(
            f"shard {shard_index} truncated: {len(buffer)} bytes, "
            f"header needs {SHARD_HEADER.size}",
            section=f"shard {shard_index} header",
        )
    magic, version, stored_index, n_payloads, table_off = (
        SHARD_HEADER.unpack_from(buffer, 0)
    )
    if magic != SHARD_MAGIC:
        raise SnapshotCorruptError(
            f"not a repro shard file (bad magic {magic!r})",
            section=f"shard {shard_index} header",
        )
    if version != VERSION_V3:
        raise SnapshotCorruptError(
            f"unsupported shard version {version}",
            section=f"shard {shard_index} header",
        )
    if stored_index != shard_index:
        raise SnapshotCorruptError(
            f"shard file claims index {stored_index}, "
            f"manifest expects {shard_index}",
            section=f"shard {shard_index} header",
        )
    return n_payloads, table_off
