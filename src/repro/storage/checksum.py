"""CRC32C (Castagnoli) for snapshot integrity sections.

Snapshot format v2 protects every file section with a CRC32C, the
checksum hardware-accelerated on modern CPUs and used by iSCSI, ext4,
and most storage formats for exactly this job (better error-detection
spectrum than CRC32/zlib for short messages, same cost).

The container cannot install the ``crc32c``/``google-crc32c`` wheels,
so the default implementation is a pure-Python slice-by-8: eight
256-entry tables, one table lookup per input byte but only one loop
iteration per eight bytes.  When a native module *is* importable it
wins automatically — the byte contract is identical.
"""

from __future__ import annotations

_POLY = 0x82F63B78  # Castagnoli polynomial, reflected


def _build_tables():
    tables = [[0] * 256 for _ in range(8)]
    table0 = tables[0]
    for i in range(256):
        crc = i
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table0[i] = crc
    for i in range(256):
        crc = table0[i]
        for t in range(1, 8):
            crc = table0[crc & 0xFF] ^ (crc >> 8)
            tables[t][i] = crc
    return tables


_TABLES = _build_tables()
_T0, _T1, _T2, _T3, _T4, _T5, _T6, _T7 = _TABLES


def _crc32c_py(data, value: int = 0) -> int:
    crc = (value ^ 0xFFFFFFFF) & 0xFFFFFFFF
    data = memoryview(data).cast("B")
    length = len(data)
    head = length & ~7
    i = 0
    while i < head:
        crc ^= (
            data[i]
            | (data[i + 1] << 8)
            | (data[i + 2] << 16)
            | (data[i + 3] << 24)
        )
        crc = (
            _T7[crc & 0xFF]
            ^ _T6[(crc >> 8) & 0xFF]
            ^ _T5[(crc >> 16) & 0xFF]
            ^ _T4[(crc >> 24) & 0xFF]
            ^ _T3[data[i + 4]]
            ^ _T2[data[i + 5]]
            ^ _T1[data[i + 6]]
            ^ _T0[data[i + 7]]
        )
        i += 8
    while i < length:
        crc = _T0[(crc ^ data[i]) & 0xFF] ^ (crc >> 8)
        i += 1
    return crc ^ 0xFFFFFFFF


try:  # a native implementation, when the environment has one
    from crc32c import crc32c as _crc32c_native  # type: ignore
except ImportError:
    try:
        from google_crc32c import value as _crc32c_native  # type: ignore
    except ImportError:
        _crc32c_native = None


def crc32c(data, value: int = 0) -> int:
    """CRC32C of ``data``, optionally continuing from ``value``."""
    if _crc32c_native is not None:
        if isinstance(data, memoryview):
            data = bytes(data)
        return _crc32c_native(data, value)
    return _crc32c_py(data, value)
