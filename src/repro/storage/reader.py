"""Snapshot reader: mmap a snapshot file and hand out matrix views.

The reader memory-maps the file and parses only the header, the two
term dictionaries, and the block table — O(dictionary) work, not
O(edges).  Adjacency payloads stay untouched until asked for:

* :meth:`SnapshotReader.dense_matrix` wraps a dense block's bytes
  into an :class:`~repro.bitvec.matrix.AdjacencyMatrix` whose packed
  row block is a **zero-copy read-only view** into the mapping;
* :meth:`SnapshotReader.gap_matrix` wraps a gap block into a
  :class:`~repro.bitvec.gap.GapEncodedMatrix` whose per-row run
  arrays are likewise views — decoding happens only when rows are
  touched (or all at once via ``to_adjacency`` on promotion).

Matrices served from a snapshot are read-only: attempting to ``add``
edges to them raises, by NumPy's write protection on the mapped
buffer.  That is deliberate — a snapshot is an immutable artifact;
mutate a :class:`GraphDatabase` and re-export instead.
"""

from __future__ import annotations

import mmap
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Hashable, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.bitvec.bitset import Bitset, _word_count
from repro.bitvec.gap import GapEncodedMatrix, decode as gap_decode
from repro.bitvec.matrix import AdjacencyMatrix
from repro.errors import SnapshotCorruptError, SnapshotError
from repro.storage.checksum import crc32c
from repro.storage.format import (
    BLOCK_ENTRY,
    BlockEntry,
    DIRECTIONS,
    ENCODING_DENSE,
    ENCODING_GAP,
    ENCODINGS,
    Header,
    SHARD_HEADER,
    VERSION_V1,
    decode_terms,
    pad8,
    shard_path,
    unpack_checksum_table,
    unpack_shard_header,
)

#: Order of the fixed (non-payload) sections in the checksum table.
_META_SECTIONS = (
    "header", "nodes dictionary", "predicates dictionary", "block table",
)


@dataclass
class LabelBlockInfo:
    """Per-label summary for ``repro db info`` and the residency math."""

    label: str
    encoding: str          # "dense" or "gap"
    n_edges: int           # forward-direction edge count
    payload_bytes: int     # on-disk bytes of both directions
    dense_bytes: int       # bytes both directions would occupy dense


@dataclass
class SnapshotInfo:
    """Header-level summary of an open snapshot."""

    path: Path
    file_bytes: int
    n_nodes: int
    n_predicates: int
    n_triples: int
    n_blocks: int
    labels: List[LabelBlockInfo]
    version: int = VERSION_V1
    checksummed: bool = False
    n_shards: int = 0

    @property
    def n_hot(self) -> int:
        return sum(1 for i in self.labels if i.encoding == "dense")

    @property
    def n_cold(self) -> int:
        return sum(1 for i in self.labels if i.encoding == "gap")

    def to_dict(self) -> Dict:
        return {
            "path": str(self.path),
            "file_bytes": self.file_bytes,
            "n_nodes": self.n_nodes,
            "n_predicates": self.n_predicates,
            "n_triples": self.n_triples,
            "n_blocks": self.n_blocks,
            "n_hot": self.n_hot,
            "n_cold": self.n_cold,
            "version": self.version,
            "checksummed": self.checksummed,
            "n_shards": self.n_shards,
            "labels": [
                {
                    "label": i.label,
                    "encoding": i.encoding,
                    "n_edges": i.n_edges,
                    "payload_bytes": i.payload_bytes,
                    "dense_bytes": i.dense_bytes,
                }
                for i in self.labels
            ],
        }


@dataclass
class SectionCheck:
    """Integrity status of one file section."""

    section: str
    status: str        # "ok" or "corrupt"
    detail: str = ""


@dataclass
class VerificationReport:
    """`SnapshotReader.verify()` — one status per file section.

    v2 files check every section against its stored CRC32C; v1 files
    have no checksums, so verification falls back to a structural
    decode of every block (catches truncation and malformed payloads,
    not silent bit flips — ``checksummed`` says which bar applied).
    """

    path: Path
    version: int
    checksummed: bool
    sections: List[SectionCheck]

    @property
    def ok(self) -> bool:
        return all(s.status == "ok" for s in self.sections)

    @property
    def n_corrupt(self) -> int:
        return sum(1 for s in self.sections if s.status != "ok")

    def corrupt_sections(self) -> List[str]:
        return [s.section for s in self.sections if s.status != "ok"]

    def to_dict(self) -> Dict:
        return {
            "path": str(self.path),
            "version": self.version,
            "checksummed": self.checksummed,
            "ok": self.ok,
            "sections": [
                {
                    "section": s.section,
                    "status": s.status,
                    **({"detail": s.detail} if s.detail else {}),
                }
                for s in self.sections
            ],
        }


class SnapshotReader:
    """An open, memory-mapped snapshot file."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        if not self.path.exists():
            raise SnapshotError(f"snapshot not found: {self.path}")
        self._file = self.path.open("rb")
        try:
            self._mm = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except ValueError as error:
            self._file.close()
            raise SnapshotError(
                f"cannot map snapshot {self.path}: {error}"
            ) from None
        try:
            self._header = Header.unpack(self._mm)
            header = self._header
            #: per-section CRC32C list (None for v1 / unchecksummed).
            self._crcs: Optional[List[int]] = None
            #: payload blocks already CRC-verified, by block-table seq.
            self._verified: set = set()
            #: (label, direction) -> position in the block table.
            self._block_seq: Dict[Tuple[str, str], int] = {}
            #: sharded only: (label, direction) -> position among the
            #: payloads of its shard file (its shard-CRC-table slot is
            #: that position + 1; slot 0 is the shard header).
            self._shard_pos: Dict[Tuple[str, str], int] = {}
            #: shard index -> open mmap / file handle / CRC list,
            #: filled lazily on first payload touch.
            self._shard_mms: Dict[int, mmap.mmap] = {}
            self._shard_handles: Dict[int, object] = {}
            self._shard_crcs: Dict[int, List[int]] = {}
            if header.has_checksums:
                self._crcs = unpack_checksum_table(
                    self._mm, header.checksum_table_off
                )
                # Sharded manifests checksum only the metadata
                # sections — payload CRCs live in the shard files.
                expected = len(_META_SECTIONS) + (
                    0 if header.sharded else header.n_blocks
                )
                if len(self._crcs) != expected:
                    raise SnapshotCorruptError(
                        f"checksum table has {len(self._crcs)} entries, "
                        f"expected {expected}",
                        section="checksum table",
                    )
                # Metadata is cheap to checksum and about to be
                # decoded: verify it eagerly so corruption surfaces as
                # the typed error, not a downstream decode failure.
                # Payloads are verified lazily on first access.
                for index, (section, start, length) in enumerate(
                    self._meta_ranges()
                ):
                    self._verify_range(section, start, length, index)
            self._node_terms: List[Hashable] = decode_terms(
                self._mm[header.nodes_off:header.nodes_off + header.nodes_len],
                header.n_nodes,
            )
            pred_bytes = self._mm[
                header.preds_off:header.preds_off + header.preds_len
            ]
            self._predicate_terms: List[str] = [
                str(t) for t in decode_terms(pred_bytes, header.n_predicates)
            ]
            self._blocks: Dict[Tuple[str, str], BlockEntry] = {}
            offset = header.block_table_off
            per_shard_count = [0] * header.n_shards
            for position in range(header.n_blocks):
                entry = BlockEntry.unpack_from(self._mm, offset)
                offset += BLOCK_ENTRY.size
                if entry.label_id >= len(self._predicate_terms):
                    raise SnapshotError(
                        "block references unknown predicate id "
                        f"{entry.label_id}"
                    )
                label = self._predicate_terms[entry.label_id]
                key = (label, DIRECTIONS[entry.direction])
                self._blocks[key] = entry
                self._block_seq[key] = position
                if header.sharded:
                    if entry.shard >= header.n_shards:
                        raise SnapshotError(
                            f"block {label}/{key[1]} references shard "
                            f"{entry.shard} of {header.n_shards}"
                        )
                    self._shard_pos[key] = per_shard_count[entry.shard]
                    per_shard_count[entry.shard] += 1
            # Fail a sharded open fast when a shard file is gone, not
            # on the first (arbitrarily later) query that touches it.
            for index in range(header.n_shards):
                if not shard_path(self.path, index).exists():
                    raise SnapshotError(
                        f"missing shard file {shard_path(self.path, index)}"
                    )
        except Exception:
            self._mm.close()
            self._file.close()
            raise
        self._n_words = _word_count(header.n_nodes)

    def _meta_ranges(self) -> List[Tuple[str, int, int]]:
        """(section name, offset, length) of the fixed sections, in
        checksum-table order."""
        header = self._header
        table_len = BLOCK_ENTRY.size * header.n_blocks
        table_len += pad8(table_len)
        return [
            ("header", 0, header.size),
            ("nodes dictionary", header.nodes_off, header.nodes_len),
            ("predicates dictionary", header.preds_off, header.preds_len),
            ("block table", header.block_table_off, table_len),
        ]

    def _verify_range(
        self, section: str, start: int, length: int, crc_index: int,
        buffer=None, crcs: Optional[List[int]] = None,
    ) -> None:
        """Check one byte range against its stored CRC32C.

        Defaults to the manifest mapping and its table; pass a shard
        mapping + its own CRC list to check a shard-resident range."""
        if buffer is None:
            buffer = self._mm
        if crcs is None:
            crcs = self._crcs
        end = start + length
        if end > len(buffer):
            raise SnapshotCorruptError(
                f"{section} extends past end of file "
                f"({end} > {len(buffer)})",
                section=section,
            )
        actual = crc32c(buffer[start:end])
        expected = crcs[crc_index]
        if actual != expected:
            raise SnapshotCorruptError(
                f"{section} failed CRC32C "
                f"(stored {expected:#010x}, computed {actual:#010x})",
                section=section,
            )

    # -- shard files (v3) -----------------------------------------------

    def _shard_mm(self, index: int) -> mmap.mmap:
        """The mapping of shard ``index``, opened and header-verified
        on first touch.

        Shards open lazily so a reader that only ever touches a few
        labels maps only their shards — the point of sharding for the
        fork worker pool, where each worker faults in a disjoint
        subset."""
        mm = self._shard_mms.get(index)
        if mm is not None:
            return mm
        path = shard_path(self.path, index)
        if not path.exists():
            raise SnapshotError(f"missing shard file {path}")
        handle = path.open("rb")
        try:
            mm = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as error:
            handle.close()
            raise SnapshotError(
                f"cannot map shard {path}: {error}"
            ) from None
        try:
            n_payloads, table_off = unpack_shard_header(mm, index)
            crcs = unpack_checksum_table(mm, table_off)
            if len(crcs) != 1 + n_payloads:
                raise SnapshotCorruptError(
                    f"shard {index} checksum table has {len(crcs)} "
                    f"entries, expected {1 + n_payloads}",
                    section=f"shard {index} checksum table",
                )
            # Slot 0 covers the shard header itself.
            self._verify_range(
                f"shard {index} header", 0, SHARD_HEADER.size, 0,
                buffer=mm, crcs=crcs,
            )
        except Exception:
            mm.close()
            handle.close()
            raise
        self._shard_mms[index] = mm
        self._shard_handles[index] = handle
        self._shard_crcs[index] = crcs
        return mm

    def _buf(self, entry: BlockEntry):
        """The buffer holding ``entry``'s payload bytes — the manifest
        mapping, or the entry's shard mapping when sharded."""
        if self._header.sharded:
            return self._shard_mm(entry.shard)
        return self._mm

    def _check_payload(self, label: str, direction: str,
                       entry: BlockEntry) -> None:
        """Verify a block payload on first access (v2+; no-op for v1).

        Verified payloads are remembered per block — the mapping is
        immutable for the reader's lifetime, so one pass suffices no
        matter how often the block is promoted or demoted."""
        if self._crcs is None:
            return
        position = self._block_seq[(label, direction)]
        if position in self._verified:
            return
        if self._header.sharded:
            self._verify_range(
                f"payload {label}/{direction}",
                entry.payload_off, entry.payload_len,
                1 + self._shard_pos[(label, direction)],
                buffer=self._shard_mm(entry.shard),
                crcs=self._shard_crcs[entry.shard],
            )
        else:
            self._verify_range(
                f"payload {label}/{direction}",
                entry.payload_off, entry.payload_len,
                len(_META_SECTIONS) + position,
            )
        self._verified.add(position)

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Release the mappings.  Safe to skip: dropping the reader (and
        every matrix view served from it) releases the files as well."""
        maps = [(self._mm, self._file)] + [
            (self._shard_mms[i], self._shard_handles[i])
            for i in sorted(self._shard_mms)
        ]
        for mm, handle in maps:
            try:
                mm.close()
            except BufferError:
                # NumPy views into the mapping are still alive; the map
                # is released when they are garbage collected.
                pass
            # The descriptor is independent of the mapping's lifetime:
            # close it either way so live views never pin an fd.
            handle.close()
        self._shard_mms.clear()
        self._shard_handles.clear()
        self._shard_crcs.clear()

    def __enter__(self) -> "SnapshotReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- header accessors ------------------------------------------------

    @property
    def file_bytes(self) -> int:
        """Total on-disk bytes: the manifest plus every shard file."""
        total = len(self._mm)
        if self._header.sharded:
            for index in range(self._header.n_shards):
                try:
                    total += shard_path(self.path, index).stat().st_size
                except OSError:
                    pass
            return total
        return total

    @property
    def n_shards(self) -> int:
        return self._header.n_shards

    @property
    def n_nodes(self) -> int:
        return self._header.n_nodes

    @property
    def n_predicates(self) -> int:
        return self._header.n_predicates

    @property
    def n_triples(self) -> int:
        return self._header.n_triples

    @property
    def version(self) -> int:
        return self._header.version

    @property
    def checksummed(self) -> bool:
        return self._crcs is not None

    def node_terms(self) -> List[Hashable]:
        return self._node_terms

    def predicate_terms(self) -> List[str]:
        return self._predicate_terms

    def labels(self) -> List[str]:
        return list(self._predicate_terms)

    def encoding_of(self, label: str) -> str:
        entry = self._entry(label, "forward")
        return ENCODINGS[entry.encoding]

    # -- block access ------------------------------------------------------

    def _entry(self, label: str, direction: str) -> BlockEntry:
        try:
            return self._blocks[(label, direction)]
        except KeyError:
            raise SnapshotError(
                f"no {direction} block for label {label!r}"
            ) from None

    def _array(self, dtype, count: int, offset: int,
               buffer=None) -> np.ndarray:
        if buffer is None:
            buffer = self._mm
        end = offset + np.dtype(dtype).itemsize * count
        if end > len(buffer):
            raise SnapshotError(
                "block payload extends past end of file "
                f"({end} > {len(buffer)})"
            )
        return np.frombuffer(buffer, dtype=dtype, count=count,
                             offset=offset)

    def _row_nodes(self, entry: BlockEntry) -> np.ndarray:
        """The block's row node ids, range-checked against the header.

        An id outside ``[0, n_nodes)`` would otherwise index silently
        (negative wrap-around) or raise a bare NumPy error; corrupt
        files must fail as :class:`SnapshotError` like every other
        malformed-file path."""
        nodes = self._array(np.int64, entry.n_rows, entry.payload_off,
                            buffer=self._buf(entry))
        if nodes.size and (
            int(nodes.min()) < 0 or int(nodes.max()) >= self.n_nodes
        ):
            raise SnapshotError(
                f"block row node ids out of range [0, {self.n_nodes})"
            )
        return nodes

    def row_nodes(self, label: str, direction: str) -> np.ndarray:
        """The node ids owning a non-empty row in the block — i.e. the
        set bits of the Eq. (13) summary vector — served straight from
        the block table without decoding any row payload (the
        summary-only cold read behind
        :meth:`TieredGraphView.label_summaries`)."""
        entry = self._entry(label, direction)
        self._check_payload(label, direction, entry)
        return self._row_nodes(entry)

    def dense_matrix(self, label: str, direction: str) -> AdjacencyMatrix:
        """Zero-copy :class:`AdjacencyMatrix` over a dense block."""
        entry = self._entry(label, direction)
        self._check_payload(label, direction, entry)
        if entry.encoding != ENCODING_DENSE:
            raise SnapshotError(
                f"label {label!r} is gap-encoded; use gap_matrix()"
            )
        n = self.n_nodes
        nodes = self._row_nodes(entry)
        packed = self._array(
            np.uint64, entry.n_rows * self._n_words,
            entry.payload_off + 8 * entry.n_rows,
            buffer=self._buf(entry),
        ).reshape(entry.n_rows, self._n_words)
        out = AdjacencyMatrix(n)
        for position, node in enumerate(nodes.tolist()):
            out.rows[node] = Bitset._wrap(n, packed[position])
        out.summary = Bitset.from_indices(n, nodes)
        out.n_edges = entry.n_edges
        row_index = np.full(n, -1, dtype=np.int64)
        row_index[nodes] = np.arange(nodes.size, dtype=np.int64)
        out._row_nodes = nodes
        out._row_index = row_index
        out._word_idx = nodes // 64
        out._bit_shift = (nodes % 64).astype(np.uint64)
        out._packed = packed
        return out

    def gap_matrix(self, label: str, direction: str) -> GapEncodedMatrix:
        """View-backed :class:`GapEncodedMatrix` over a gap block."""
        entry = self._entry(label, direction)
        self._check_payload(label, direction, entry)
        if entry.encoding != ENCODING_GAP:
            raise SnapshotError(
                f"label {label!r} is dense; use dense_matrix()"
            )
        n = self.n_nodes
        nodes = self._row_nodes(entry)
        buffer = self._buf(entry)
        offsets = self._array(
            np.uint64, entry.n_rows + 1,
            entry.payload_off + 8 * entry.n_rows,
            buffer=buffer,
        )
        runs = self._array(
            np.uint32, int(offsets[-1]) if entry.n_rows else 0,
            entry.payload_off + 8 * entry.n_rows + 8 * (entry.n_rows + 1),
            buffer=buffer,
        )
        out = GapEncodedMatrix(n)
        bounds = offsets.astype(np.int64)
        for position, node in enumerate(nodes.tolist()):
            out._rows[node] = runs[bounds[position]:bounds[position + 1]]
        return out

    def payload_bytes(self, label: str) -> int:
        """On-disk payload bytes of both directions of one label."""
        return sum(
            self._entry(label, d).payload_len for d in DIRECTIONS
        )

    def n_label_edges(self, label: str) -> int:
        return self._entry(label, "forward").n_edges

    # -- whole-graph iteration ----------------------------------------------

    def iter_id_triples(self) -> Iterator[Tuple[int, int, int]]:
        """All (subject, predicate, object) id triples, decoded from
        the forward blocks (labels in id order, subjects ascending)."""
        for label_id, label in enumerate(self._predicate_terms):
            entry = self._entry(label, "forward")
            n = self.n_nodes
            if entry.encoding == ENCODING_DENSE:
                matrix = self.dense_matrix(label, "forward")
                for node in matrix._row_nodes.tolist():
                    for obj in matrix.rows[node].iter_ones().tolist():
                        yield (node, label_id, obj)
            else:
                matrix = self.gap_matrix(label, "forward")
                for node in sorted(matrix._rows):
                    row = gap_decode(matrix._rows[node], n)
                    for obj in row.iter_ones().tolist():
                        yield (node, label_id, obj)

    def iter_triples(self) -> Iterator[Tuple[Hashable, str, Hashable]]:
        """All name triples (decoded through the dictionaries)."""
        nodes = self._node_terms
        preds = self._predicate_terms
        for s, p, o in self.iter_id_triples():
            yield (nodes[s], preds[p], nodes[o])

    # -- verification -------------------------------------------------------

    def verify(self) -> VerificationReport:
        """Full-file integrity check, one status per section.

        v2: every metadata section and every payload is checked
        against its stored CRC32C (results are collected, never
        raised, so ``repro db verify`` can report all damage at once).
        v1 files carry no checksums; each block is structurally
        decoded instead, which still catches truncation and malformed
        payloads.
        """
        sections: List[SectionCheck] = []
        if self._crcs is not None:
            for index, (name, start, length) in enumerate(
                self._meta_ranges()
            ):
                sections.append(
                    self._checked(name, start, length, index)
                )
            meta = len(_META_SECTIONS)
            for key, position in sorted(
                self._block_seq.items(), key=lambda kv: kv[1]
            ):
                entry = self._blocks[key]
                name = f"payload {key[0]}/{key[1]}"
                if self._header.sharded:
                    # Opening the shard verifies its header; a missing
                    # or structurally broken shard file reports as a
                    # corrupt section, not a raised error.
                    try:
                        buffer = self._shard_mm(entry.shard)
                    except SnapshotError as error:
                        sections.append(
                            SectionCheck(name, "corrupt", str(error))
                        )
                        continue
                    sections.append(self._checked(
                        name, entry.payload_off, entry.payload_len,
                        1 + self._shard_pos[key],
                        buffer=buffer, crcs=self._shard_crcs[entry.shard],
                    ))
                else:
                    sections.append(self._checked(
                        name, entry.payload_off, entry.payload_len,
                        meta + position,
                    ))
        else:
            for (label, direction), entry in sorted(
                self._blocks.items()
            ):
                name = f"payload {label}/{direction}"
                try:
                    if entry.encoding == ENCODING_DENSE:
                        self.dense_matrix(label, direction)
                    else:
                        # Full decode: runs must reconstruct every row
                        # (a dense check only wraps views).
                        matrix = self.gap_matrix(label, direction)
                        for node in matrix._rows:
                            gap_decode(matrix._rows[node], self.n_nodes)
                    sections.append(SectionCheck(name, "ok",
                                                 "structural check only"))
                except SnapshotError as error:
                    sections.append(
                        SectionCheck(name, "corrupt", str(error))
                    )
        return VerificationReport(
            path=self.path,
            version=self.version,
            checksummed=self.checksummed,
            sections=sections,
        )

    def _checked(
        self, section: str, start: int, length: int, crc_index: int,
        buffer=None, crcs: Optional[List[int]] = None,
    ) -> SectionCheck:
        try:
            self._verify_range(section, start, length, crc_index,
                               buffer=buffer, crcs=crcs)
        except SnapshotCorruptError as error:
            return SectionCheck(section, "corrupt", str(error))
        return SectionCheck(section, "ok")

    # -- info -----------------------------------------------------------------

    def info(self) -> SnapshotInfo:
        n_words = self._n_words
        labels: List[LabelBlockInfo] = []
        for label in self._predicate_terms:
            dense_total = 0
            for direction in DIRECTIONS:
                entry = self._entry(label, direction)
                dense_total += 8 * entry.n_rows * (1 + n_words)
            labels.append(
                LabelBlockInfo(
                    label=label,
                    encoding=self.encoding_of(label),
                    n_edges=self.n_label_edges(label),
                    payload_bytes=self.payload_bytes(label),
                    dense_bytes=dense_total,
                )
            )
        return SnapshotInfo(
            path=self.path,
            file_bytes=self.file_bytes,
            n_nodes=self.n_nodes,
            n_predicates=self.n_predicates,
            n_triples=self.n_triples,
            n_blocks=self._header.n_blocks,
            labels=labels,
            version=self.version,
            checksummed=self.checksummed,
            n_shards=self._header.n_shards,
        )

    def __repr__(self) -> str:
        return (
            f"SnapshotReader({self.path.name}, |O|={self.n_nodes}, "
            f"triples={self.n_triples}, labels={self.n_predicates})"
        )
