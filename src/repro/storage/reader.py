"""Snapshot reader: mmap a snapshot file and hand out matrix views.

The reader memory-maps the file and parses only the header, the two
term dictionaries, and the block table — O(dictionary) work, not
O(edges).  Adjacency payloads stay untouched until asked for:

* :meth:`SnapshotReader.dense_matrix` wraps a dense block's bytes
  into an :class:`~repro.bitvec.matrix.AdjacencyMatrix` whose packed
  row block is a **zero-copy read-only view** into the mapping;
* :meth:`SnapshotReader.gap_matrix` wraps a gap block into a
  :class:`~repro.bitvec.gap.GapEncodedMatrix` whose per-row run
  arrays are likewise views — decoding happens only when rows are
  touched (or all at once via ``to_adjacency`` on promotion).

Matrices served from a snapshot are read-only: attempting to ``add``
edges to them raises, by NumPy's write protection on the mapped
buffer.  That is deliberate — a snapshot is an immutable artifact;
mutate a :class:`GraphDatabase` and re-export instead.
"""

from __future__ import annotations

import mmap
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Hashable, Iterator, List, Tuple, Union

import numpy as np

from repro.bitvec.bitset import Bitset, _word_count
from repro.bitvec.gap import GapEncodedMatrix, decode as gap_decode
from repro.bitvec.matrix import AdjacencyMatrix
from repro.errors import SnapshotError
from repro.storage.format import (
    BLOCK_ENTRY,
    BlockEntry,
    DIRECTIONS,
    ENCODING_DENSE,
    ENCODING_GAP,
    ENCODINGS,
    Header,
    decode_terms,
)


@dataclass
class LabelBlockInfo:
    """Per-label summary for ``repro db info`` and the residency math."""

    label: str
    encoding: str          # "dense" or "gap"
    n_edges: int           # forward-direction edge count
    payload_bytes: int     # on-disk bytes of both directions
    dense_bytes: int       # bytes both directions would occupy dense


@dataclass
class SnapshotInfo:
    """Header-level summary of an open snapshot."""

    path: Path
    file_bytes: int
    n_nodes: int
    n_predicates: int
    n_triples: int
    n_blocks: int
    labels: List[LabelBlockInfo]

    @property
    def n_hot(self) -> int:
        return sum(1 for i in self.labels if i.encoding == "dense")

    @property
    def n_cold(self) -> int:
        return sum(1 for i in self.labels if i.encoding == "gap")

    def to_dict(self) -> Dict:
        return {
            "path": str(self.path),
            "file_bytes": self.file_bytes,
            "n_nodes": self.n_nodes,
            "n_predicates": self.n_predicates,
            "n_triples": self.n_triples,
            "n_blocks": self.n_blocks,
            "n_hot": self.n_hot,
            "n_cold": self.n_cold,
            "labels": [
                {
                    "label": i.label,
                    "encoding": i.encoding,
                    "n_edges": i.n_edges,
                    "payload_bytes": i.payload_bytes,
                    "dense_bytes": i.dense_bytes,
                }
                for i in self.labels
            ],
        }


class SnapshotReader:
    """An open, memory-mapped snapshot file."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        if not self.path.exists():
            raise SnapshotError(f"snapshot not found: {self.path}")
        self._file = self.path.open("rb")
        try:
            self._mm = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except ValueError as error:
            self._file.close()
            raise SnapshotError(
                f"cannot map snapshot {self.path}: {error}"
            ) from None
        try:
            self._header = Header.unpack(self._mm)
            header = self._header
            self._node_terms: List[Hashable] = decode_terms(
                self._mm[header.nodes_off:header.nodes_off + header.nodes_len],
                header.n_nodes,
            )
            pred_bytes = self._mm[
                header.preds_off:header.preds_off + header.preds_len
            ]
            self._predicate_terms: List[str] = [
                str(t) for t in decode_terms(pred_bytes, header.n_predicates)
            ]
            self._blocks: Dict[Tuple[str, str], BlockEntry] = {}
            offset = header.block_table_off
            for _ in range(header.n_blocks):
                entry = BlockEntry.unpack_from(self._mm, offset)
                offset += BLOCK_ENTRY.size
                if entry.label_id >= len(self._predicate_terms):
                    raise SnapshotError(
                        "block references unknown predicate id "
                        f"{entry.label_id}"
                    )
                label = self._predicate_terms[entry.label_id]
                self._blocks[(label, DIRECTIONS[entry.direction])] = entry
        except Exception:
            self._mm.close()
            self._file.close()
            raise
        self._n_words = _word_count(header.n_nodes)

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Release the mapping.  Safe to skip: dropping the reader (and
        every matrix view served from it) releases the file as well."""
        try:
            self._mm.close()
        except BufferError:
            # NumPy views into the mapping are still alive; the map is
            # released when they are garbage collected.
            pass
        # The descriptor is independent of the mapping's lifetime:
        # close it either way so live views never pin an fd.
        self._file.close()

    def __enter__(self) -> "SnapshotReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- header accessors ------------------------------------------------

    @property
    def file_bytes(self) -> int:
        return len(self._mm)

    @property
    def n_nodes(self) -> int:
        return self._header.n_nodes

    @property
    def n_predicates(self) -> int:
        return self._header.n_predicates

    @property
    def n_triples(self) -> int:
        return self._header.n_triples

    def node_terms(self) -> List[Hashable]:
        return self._node_terms

    def predicate_terms(self) -> List[str]:
        return self._predicate_terms

    def labels(self) -> List[str]:
        return list(self._predicate_terms)

    def encoding_of(self, label: str) -> str:
        entry = self._entry(label, "forward")
        return ENCODINGS[entry.encoding]

    # -- block access ------------------------------------------------------

    def _entry(self, label: str, direction: str) -> BlockEntry:
        try:
            return self._blocks[(label, direction)]
        except KeyError:
            raise SnapshotError(
                f"no {direction} block for label {label!r}"
            ) from None

    def _array(self, dtype, count: int, offset: int) -> np.ndarray:
        end = offset + np.dtype(dtype).itemsize * count
        if end > len(self._mm):
            raise SnapshotError(
                "block payload extends past end of file "
                f"({end} > {len(self._mm)})"
            )
        return np.frombuffer(self._mm, dtype=dtype, count=count,
                             offset=offset)

    def _row_nodes(self, entry: BlockEntry) -> np.ndarray:
        """The block's row node ids, range-checked against the header.

        An id outside ``[0, n_nodes)`` would otherwise index silently
        (negative wrap-around) or raise a bare NumPy error; corrupt
        files must fail as :class:`SnapshotError` like every other
        malformed-file path."""
        nodes = self._array(np.int64, entry.n_rows, entry.payload_off)
        if nodes.size and (
            int(nodes.min()) < 0 or int(nodes.max()) >= self.n_nodes
        ):
            raise SnapshotError(
                f"block row node ids out of range [0, {self.n_nodes})"
            )
        return nodes

    def row_nodes(self, label: str, direction: str) -> np.ndarray:
        """The node ids owning a non-empty row in the block — i.e. the
        set bits of the Eq. (13) summary vector — served straight from
        the block table without decoding any row payload (the
        summary-only cold read behind
        :meth:`TieredGraphView.label_summaries`)."""
        return self._row_nodes(self._entry(label, direction))

    def dense_matrix(self, label: str, direction: str) -> AdjacencyMatrix:
        """Zero-copy :class:`AdjacencyMatrix` over a dense block."""
        entry = self._entry(label, direction)
        if entry.encoding != ENCODING_DENSE:
            raise SnapshotError(
                f"label {label!r} is gap-encoded; use gap_matrix()"
            )
        n = self.n_nodes
        nodes = self._row_nodes(entry)
        packed = self._array(
            np.uint64, entry.n_rows * self._n_words,
            entry.payload_off + 8 * entry.n_rows,
        ).reshape(entry.n_rows, self._n_words)
        out = AdjacencyMatrix(n)
        for position, node in enumerate(nodes.tolist()):
            out.rows[node] = Bitset._wrap(n, packed[position])
        out.summary = Bitset.from_indices(n, nodes)
        out.n_edges = entry.n_edges
        row_index = np.full(n, -1, dtype=np.int64)
        row_index[nodes] = np.arange(nodes.size, dtype=np.int64)
        out._row_nodes = nodes
        out._row_index = row_index
        out._word_idx = nodes // 64
        out._bit_shift = (nodes % 64).astype(np.uint64)
        out._packed = packed
        return out

    def gap_matrix(self, label: str, direction: str) -> GapEncodedMatrix:
        """View-backed :class:`GapEncodedMatrix` over a gap block."""
        entry = self._entry(label, direction)
        if entry.encoding != ENCODING_GAP:
            raise SnapshotError(
                f"label {label!r} is dense; use dense_matrix()"
            )
        n = self.n_nodes
        nodes = self._row_nodes(entry)
        offsets = self._array(
            np.uint64, entry.n_rows + 1,
            entry.payload_off + 8 * entry.n_rows,
        )
        runs = self._array(
            np.uint32, int(offsets[-1]) if entry.n_rows else 0,
            entry.payload_off + 8 * entry.n_rows + 8 * (entry.n_rows + 1),
        )
        out = GapEncodedMatrix(n)
        bounds = offsets.astype(np.int64)
        for position, node in enumerate(nodes.tolist()):
            out._rows[node] = runs[bounds[position]:bounds[position + 1]]
        return out

    def payload_bytes(self, label: str) -> int:
        """On-disk payload bytes of both directions of one label."""
        return sum(
            self._entry(label, d).payload_len for d in DIRECTIONS
        )

    def n_label_edges(self, label: str) -> int:
        return self._entry(label, "forward").n_edges

    # -- whole-graph iteration ----------------------------------------------

    def iter_id_triples(self) -> Iterator[Tuple[int, int, int]]:
        """All (subject, predicate, object) id triples, decoded from
        the forward blocks (labels in id order, subjects ascending)."""
        for label_id, label in enumerate(self._predicate_terms):
            entry = self._entry(label, "forward")
            n = self.n_nodes
            if entry.encoding == ENCODING_DENSE:
                matrix = self.dense_matrix(label, "forward")
                for node in matrix._row_nodes.tolist():
                    for obj in matrix.rows[node].iter_ones().tolist():
                        yield (node, label_id, obj)
            else:
                matrix = self.gap_matrix(label, "forward")
                for node in sorted(matrix._rows):
                    row = gap_decode(matrix._rows[node], n)
                    for obj in row.iter_ones().tolist():
                        yield (node, label_id, obj)

    def iter_triples(self) -> Iterator[Tuple[Hashable, str, Hashable]]:
        """All name triples (decoded through the dictionaries)."""
        nodes = self._node_terms
        preds = self._predicate_terms
        for s, p, o in self.iter_id_triples():
            yield (nodes[s], preds[p], nodes[o])

    # -- info -----------------------------------------------------------------

    def info(self) -> SnapshotInfo:
        n_words = self._n_words
        labels: List[LabelBlockInfo] = []
        for label in self._predicate_terms:
            dense_total = 0
            for direction in DIRECTIONS:
                entry = self._entry(label, direction)
                dense_total += 8 * entry.n_rows * (1 + n_words)
            labels.append(
                LabelBlockInfo(
                    label=label,
                    encoding=self.encoding_of(label),
                    n_edges=self.n_label_edges(label),
                    payload_bytes=self.payload_bytes(label),
                    dense_bytes=dense_total,
                )
            )
        return SnapshotInfo(
            path=self.path,
            file_bytes=self.file_bytes,
            n_nodes=self.n_nodes,
            n_predicates=self.n_predicates,
            n_triples=self.n_triples,
            n_blocks=self._header.n_blocks,
            labels=labels,
        )

    def __repr__(self) -> str:
        return (
            f"SnapshotReader({self.path.name}, |O|={self.n_nodes}, "
            f"triples={self.n_triples}, labels={self.n_predicates})"
        )
