"""Snapshot writer: serialize a graph database to the binary format.

The writer materializes the per-label adjacency matrices once (they
are what the solver runs on anyway), gap-encodes every row, and then
decides **per label** which encoding reaches the disk:

* labels whose gap-encoded bytes undercut their dense packed bytes
  (``encoded < cold_threshold * dense``) are stored ``gap`` — they
  become the *cold tier*, staying compressed in the open snapshot
  until a query first touches them;
* all other labels are stored ``dense`` — the *hot tier*, loadable as
  zero-copy NumPy views straight into the packed kernel.

Output is deterministic: node ids follow the database's insertion
order, predicate ids are the sorted label order, rows are sorted by
node id, so the same database always produces byte-identical files.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.bitvec.gap import encode as gap_encode
from repro.errors import SnapshotError
from repro.storage.checksum import crc32c
from repro.storage.format import (
    BlockEntry,
    DIRECTION_BACKWARD,
    DIRECTION_FORWARD,
    ENCODING_DENSE,
    ENCODING_GAP,
    HEADER,
    HEADER_V2,
    Header,
    SUPPORTED_VERSIONS,
    VERSION,
    VERSION_V1,
    encode_term_section,
    pack_block_table,
    pack_checksum_table,
    pad8,
)

#: Default tier heuristic: a label goes cold when its gap-encoded
#: payload is strictly smaller than its dense payload.
DEFAULT_COLD_THRESHOLD = 1.0


@dataclass
class WriteReport:
    """What one :func:`write_snapshot` call produced."""

    path: Path
    file_bytes: int
    n_nodes: int
    n_predicates: int
    n_triples: int
    elapsed: float
    #: label -> "hot" (dense) or "cold" (gap)
    tiers: Dict[str, str] = field(default_factory=dict)
    #: label -> on-disk payload bytes of the chosen encoding
    payload_bytes: Dict[str, int] = field(default_factory=dict)
    #: label -> payload bytes had the label been stored dense
    dense_bytes: Dict[str, int] = field(default_factory=dict)

    @property
    def n_hot(self) -> int:
        return sum(1 for t in self.tiers.values() if t == "hot")

    @property
    def n_cold(self) -> int:
        return sum(1 for t in self.tiers.values() if t == "cold")


def _dense_payload(matrix) -> bytes:
    """Row node ids + the packed row block, as stored on disk."""
    matrix.pack()
    nodes = matrix._row_nodes
    if nodes.size == 0:
        return b""
    return nodes.tobytes() + matrix._packed.tobytes()


def _gap_payload(matrix) -> bytes:
    """Row node ids + run offsets + concatenated gap runs."""
    matrix.pack()
    nodes = matrix._row_nodes
    runs: List[np.ndarray] = [
        gap_encode(matrix.rows[int(node)]) for node in nodes
    ]
    lengths = np.fromiter(
        (r.size for r in runs), dtype=np.uint64, count=len(runs)
    )
    offsets = np.zeros(len(runs) + 1, dtype=np.uint64)
    np.cumsum(lengths, out=offsets[1:])
    body = (
        nodes.tobytes()
        + offsets.tobytes()
        + (np.concatenate(runs).astype(np.uint32).tobytes() if runs else b"")
    )
    return body + b"\x00" * pad8(len(body))


class SnapshotWriter:
    """Serialize a :class:`~repro.graph.database.GraphDatabase` (or any
    graph exposing ``matrices()``) into one snapshot file."""

    def __init__(
        self,
        path: Union[str, Path],
        cold_threshold: float = DEFAULT_COLD_THRESHOLD,
        version: int = VERSION,
    ):
        if cold_threshold < 0:
            raise SnapshotError(
                f"cold_threshold must be non-negative, got {cold_threshold}"
            )
        if version not in SUPPORTED_VERSIONS:
            raise SnapshotError(
                f"cannot write snapshot version {version} "
                f"(supported: {SUPPORTED_VERSIONS})"
            )
        self.path = Path(path)
        self.cold_threshold = cold_threshold
        self.version = version

    def write(self, db) -> WriteReport:
        start = time.perf_counter()
        n = db.n_nodes
        names = [db.node_name(i) for i in range(n)]
        labels = sorted(db.labels)
        matrices = db.matrices()

        # Per label: build both candidate payloads, keep the smaller
        # side per the threshold.  40-byte block entries are per
        # direction; the tier decision is per label so a query never
        # finds one direction hot and its transpose cold.
        entries: List[BlockEntry] = []
        payloads: List[bytes] = []
        tiers: Dict[str, str] = {}
        payload_bytes: Dict[str, int] = {}
        dense_sizes: Dict[str, int] = {}
        for label_id, label in enumerate(labels):
            pair = matrices[label]
            sides = (
                (DIRECTION_FORWARD, pair.forward),
                (DIRECTION_BACKWARD, pair.backward),
            )
            dense = {d: _dense_payload(m) for d, m in sides}
            gap = {d: _gap_payload(m) for d, m in sides}
            dense_total = sum(len(p) for p in dense.values())
            gap_total = sum(len(p) for p in gap.values())
            cold = gap_total < self.cold_threshold * dense_total
            tiers[label] = "cold" if cold else "hot"
            chosen = gap if cold else dense
            payload_bytes[label] = sum(len(p) for p in chosen.values())
            dense_sizes[label] = dense_total
            for direction, matrix in sides:
                entries.append(
                    BlockEntry(
                        label_id=label_id,
                        direction=direction,
                        encoding=ENCODING_GAP if cold else ENCODING_DENSE,
                        n_rows=int(matrix._row_nodes.size),
                        n_edges=matrix.n_edges,
                        payload_off=0,  # patched below
                        payload_len=len(chosen[direction]),
                    )
                )
                payloads.append(chosen[direction])

        nodes_section = encode_term_section(names)
        preds_section = encode_term_section(labels)
        header_size = (
            HEADER.size if self.version == VERSION_V1 else HEADER_V2.size
        )
        nodes_off = header_size
        preds_off = nodes_off + len(nodes_section)
        block_table_off = preds_off + len(preds_section)
        table_len = len(pack_block_table(entries))

        # Patch absolute payload offsets (payloads are 8-aligned by
        # construction: dense payloads are whole uint64/int64 arrays
        # and gap payloads are padded explicitly).
        cursor = block_table_off + table_len
        placed: List[BlockEntry] = []
        for entry, payload in zip(entries, payloads):
            if len(payload) % 8:
                raise SnapshotError("internal: unaligned payload")
            placed.append(
                BlockEntry(
                    label_id=entry.label_id,
                    direction=entry.direction,
                    encoding=entry.encoding,
                    n_rows=entry.n_rows,
                    n_edges=entry.n_edges,
                    payload_off=cursor,
                    payload_len=entry.payload_len,
                )
            )
            cursor += len(payload)

        header = Header(
            n_nodes=n,
            n_predicates=len(labels),
            n_triples=db.n_edges,
            n_blocks=len(placed),
            nodes_off=nodes_off,
            nodes_len=len(nodes_section),
            preds_off=preds_off,
            preds_len=len(preds_section),
            block_table_off=block_table_off,
            version=self.version,
            # v2 only: the table lands right after the last payload.
            checksum_table_off=(
                0 if self.version == VERSION_V1 else cursor
            ),
        )
        header_bytes = header.pack()
        table_bytes = pack_block_table(placed)
        sections = [header_bytes, nodes_section, preds_section,
                    table_bytes] + payloads
        blob = b"".join(sections)
        if self.version != VERSION_V1:
            # Per-section CRC32C: header, nodes, predicates, block
            # table, then each payload in block-table order — every
            # byte of the file is covered by exactly one CRC (the
            # trailing table checksums itself).
            blob += pack_checksum_table([crc32c(s) for s in sections])
        # Atomic publish: snapshot paths double as build-once cache
        # keys (path.exists() gates regeneration), so a crash mid-write
        # must never leave a truncated file at the final path.
        fd, staging = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(staging, self.path)
        except BaseException:
            try:
                os.unlink(staging)
            except OSError:
                pass
            raise
        return WriteReport(
            path=self.path,
            file_bytes=len(blob),
            n_nodes=n,
            n_predicates=len(labels),
            n_triples=db.n_edges,
            elapsed=time.perf_counter() - start,
            tiers=tiers,
            payload_bytes=payload_bytes,
            dense_bytes=dense_sizes,
        )


def write_snapshot(
    db,
    path: Union[str, Path],
    cold_threshold: float = DEFAULT_COLD_THRESHOLD,
    version: int = VERSION,
) -> WriteReport:
    """Convenience wrapper: ``SnapshotWriter(path, ...).write(db)``.

    ``version=1`` writes the legacy unchecksummed layout (kept so the
    v1-compat path stays testable); the default is the current v2.
    """
    return SnapshotWriter(
        path, cold_threshold=cold_threshold, version=version
    ).write(db)
