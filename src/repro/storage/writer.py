"""Snapshot writer: serialize a graph database to the binary format.

The writer materializes the per-label adjacency matrices once (they
are what the solver runs on anyway), gap-encodes every row, and then
decides **per label** which encoding reaches the disk:

* labels whose gap-encoded bytes undercut their dense packed bytes
  (``encoded < cold_threshold * dense``) are stored ``gap`` — they
  become the *cold tier*, staying compressed in the open snapshot
  until a query first touches them;
* all other labels are stored ``dense`` — the *hot tier*, loadable as
  zero-copy NumPy views straight into the packed kernel.

Output is deterministic: node ids follow the database's insertion
order, predicate ids are the sorted label order, rows are sorted by
node id, so the same database always produces byte-identical files.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Union

import numpy as np

from repro.bitvec.gap import encode as gap_encode
from repro.errors import SnapshotError
from repro.storage.checksum import crc32c
from repro.storage.format import (
    BlockEntry,
    DIRECTION_BACKWARD,
    DIRECTION_FORWARD,
    ENCODING_DENSE,
    ENCODING_GAP,
    HEADER,
    HEADER_V2,
    HEADER_V3,
    Header,
    MAX_SHARDS,
    SHARD_HEADER,
    SUPPORTED_VERSIONS,
    VERSION,
    VERSION_V1,
    VERSION_V3,
    encode_term_section,
    pack_block_table,
    pack_checksum_table,
    pack_shard_header,
    pad8,
    shard_of_label,
    shard_path,
)

#: Default tier heuristic: a label goes cold when its gap-encoded
#: payload is strictly smaller than its dense payload.
DEFAULT_COLD_THRESHOLD = 1.0


@dataclass
class WriteReport:
    """What one :func:`write_snapshot` call produced."""

    path: Path
    file_bytes: int
    n_nodes: int
    n_predicates: int
    n_triples: int
    elapsed: float
    #: label -> "hot" (dense) or "cold" (gap)
    tiers: Dict[str, str] = field(default_factory=dict)
    #: label -> on-disk payload bytes of the chosen encoding
    payload_bytes: Dict[str, int] = field(default_factory=dict)
    #: label -> payload bytes had the label been stored dense
    dense_bytes: Dict[str, int] = field(default_factory=dict)
    #: shard file count (0 = single-file layout)
    n_shards: int = 0
    #: shard index -> on-disk bytes of that shard file
    shard_bytes: Dict[int, int] = field(default_factory=dict)

    @property
    def n_hot(self) -> int:
        return sum(1 for t in self.tiers.values() if t == "hot")

    @property
    def n_cold(self) -> int:
        return sum(1 for t in self.tiers.values() if t == "cold")


def _dense_payload(matrix) -> bytes:
    """Row node ids + the packed row block, as stored on disk."""
    matrix.pack()
    nodes = matrix._row_nodes
    if nodes.size == 0:
        return b""
    return nodes.tobytes() + matrix._packed.tobytes()


def _gap_payload(matrix) -> bytes:
    """Row node ids + run offsets + concatenated gap runs."""
    matrix.pack()
    nodes = matrix._row_nodes
    runs: List[np.ndarray] = [
        gap_encode(matrix.rows[int(node)]) for node in nodes
    ]
    lengths = np.fromiter(
        (r.size for r in runs), dtype=np.uint64, count=len(runs)
    )
    offsets = np.zeros(len(runs) + 1, dtype=np.uint64)
    np.cumsum(lengths, out=offsets[1:])
    body = (
        nodes.tobytes()
        + offsets.tobytes()
        + (np.concatenate(runs).astype(np.uint32).tobytes() if runs else b"")
    )
    return body + b"\x00" * pad8(len(body))


class SnapshotWriter:
    """Serialize a :class:`~repro.graph.database.GraphDatabase` (or any
    graph exposing ``matrices()``) into one snapshot file."""

    def __init__(
        self,
        path: Union[str, Path],
        cold_threshold: float = DEFAULT_COLD_THRESHOLD,
        version: int = VERSION,
        shards: int = 0,
    ):
        if cold_threshold < 0:
            raise SnapshotError(
                f"cold_threshold must be non-negative, got {cold_threshold}"
            )
        if version not in SUPPORTED_VERSIONS:
            raise SnapshotError(
                f"cannot write snapshot version {version} "
                f"(supported: {SUPPORTED_VERSIONS})"
            )
        if shards < 0 or shards > MAX_SHARDS:
            raise SnapshotError(
                f"shards must be in [0, {MAX_SHARDS}], got {shards}"
            )
        if shards > 0:
            if version == VERSION_V1:
                raise SnapshotError(
                    "v1 snapshots cannot be sharded (sharding needs v3)"
                )
            # Sharding is what v3 exists for: requesting shards selects
            # it regardless of the (v2) default version argument.
            version = VERSION_V3
        self.path = Path(path)
        self.cold_threshold = cold_threshold
        self.version = version
        self.shards = shards

    def write(self, db) -> WriteReport:
        start = time.perf_counter()
        n = db.n_nodes
        names = [db.node_name(i) for i in range(n)]
        labels = sorted(db.labels)
        matrices = db.matrices()

        # Per label: build both candidate payloads, keep the smaller
        # side per the threshold.  40-byte block entries are per
        # direction; the tier decision is per label so a query never
        # finds one direction hot and its transpose cold.
        entries: List[BlockEntry] = []
        payloads: List[bytes] = []
        tiers: Dict[str, str] = {}
        payload_bytes: Dict[str, int] = {}
        dense_sizes: Dict[str, int] = {}
        for label_id, label in enumerate(labels):
            pair = matrices[label]
            sides = (
                (DIRECTION_FORWARD, pair.forward),
                (DIRECTION_BACKWARD, pair.backward),
            )
            dense = {d: _dense_payload(m) for d, m in sides}
            gap = {d: _gap_payload(m) for d, m in sides}
            dense_total = sum(len(p) for p in dense.values())
            gap_total = sum(len(p) for p in gap.values())
            cold = gap_total < self.cold_threshold * dense_total
            tiers[label] = "cold" if cold else "hot"
            chosen = gap if cold else dense
            payload_bytes[label] = sum(len(p) for p in chosen.values())
            dense_sizes[label] = dense_total
            shard = (
                shard_of_label(label, self.shards) if self.shards else 0
            )
            for direction, matrix in sides:
                entries.append(
                    BlockEntry(
                        label_id=label_id,
                        direction=direction,
                        encoding=ENCODING_GAP if cold else ENCODING_DENSE,
                        n_rows=int(matrix._row_nodes.size),
                        n_edges=matrix.n_edges,
                        payload_off=0,  # patched below
                        payload_len=len(chosen[direction]),
                        shard=shard,
                    )
                )
                payloads.append(chosen[direction])

        nodes_section = encode_term_section(names)
        preds_section = encode_term_section(labels)
        if self.version == VERSION_V1:
            header_size = HEADER.size
        elif self.version == VERSION_V3:
            header_size = HEADER_V3.size
        else:
            header_size = HEADER_V2.size
        nodes_off = header_size
        preds_off = nodes_off + len(nodes_section)
        block_table_off = preds_off + len(preds_section)
        table_len = len(pack_block_table(entries))

        # Payloads are 8-aligned by construction: dense payloads are
        # whole uint64/int64 arrays and gap payloads are padded
        # explicitly.
        for payload in payloads:
            if len(payload) % 8:
                raise SnapshotError("internal: unaligned payload")

        # Patch payload offsets.  Single-file: absolute into the
        # manifest, right after the block table.  Sharded: per shard
        # file, right after its 32-byte shard header; the per-shard
        # cursor walks the shard's payloads in block-table order, so
        # block -> position-in-shard is recoverable by counting
        # earlier same-shard entries.
        placed: List[BlockEntry] = []
        shard_payloads: List[List[bytes]] = [[] for _ in range(self.shards)]
        if self.shards:
            cursors = [SHARD_HEADER.size] * self.shards
            for entry, payload in zip(entries, payloads):
                placed.append(replace(entry, payload_off=cursors[entry.shard]))
                cursors[entry.shard] += len(payload)
                shard_payloads[entry.shard].append(payload)
        else:
            cursor = block_table_off + table_len
            for entry, payload in zip(entries, payloads):
                placed.append(replace(entry, payload_off=cursor))
                cursor += len(payload)

        if self.version == VERSION_V1:
            checksum_table_off = 0
        elif self.shards:
            # Sharded manifest: the table covers only the four
            # metadata sections and lands right after the block table.
            checksum_table_off = block_table_off + table_len
        else:
            # Single-file: the table lands right after the last payload.
            checksum_table_off = cursor

        header = Header(
            n_nodes=n,
            n_predicates=len(labels),
            n_triples=db.n_edges,
            n_blocks=len(placed),
            nodes_off=nodes_off,
            nodes_len=len(nodes_section),
            preds_off=preds_off,
            preds_len=len(preds_section),
            block_table_off=block_table_off,
            version=self.version,
            checksum_table_off=checksum_table_off,
            n_shards=self.shards,
        )
        header_bytes = header.pack()
        table_bytes = pack_block_table(placed)
        sections = [header_bytes, nodes_section, preds_section, table_bytes]
        if not self.shards:
            sections += payloads
        blob = b"".join(sections)
        if self.version != VERSION_V1:
            # Per-section CRC32C: header, nodes, predicates, block
            # table, then (single-file only) each payload in
            # block-table order — every byte of the file is covered by
            # exactly one CRC (the trailing table checksums itself).
            blob += pack_checksum_table([crc32c(s) for s in sections])

        # Each shard file carries its own trailing checksum table —
        # shard header, then its payloads in shard order — so one
        # shard verifies without touching its siblings.
        shard_blobs: List[bytes] = []
        shard_sizes: Dict[int, int] = {}
        for index in range(self.shards):
            body = shard_payloads[index]
            head = pack_shard_header(
                index, len(body),
                SHARD_HEADER.size + sum(len(p) for p in body),
            )
            shard_sections = [head] + body
            shard_blob = b"".join(shard_sections)
            shard_blob += pack_checksum_table(
                [crc32c(s) for s in shard_sections]
            )
            shard_blobs.append(shard_blob)
            shard_sizes[index] = len(shard_blob)

        # Atomic publish: snapshot paths double as build-once cache
        # keys (path.exists() gates regeneration), so a crash mid-write
        # must never leave a truncated file at the final path.  Shards
        # are published before the manifest: a crash part-way leaves at
        # worst orphan/mismatched shard files that the (old or absent)
        # manifest's checksums refuse — never a valid manifest pointing
        # at missing shards.
        def publish(target: Path, data: bytes) -> None:
            fd, staging = tempfile.mkstemp(
                dir=target.parent, prefix=target.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                os.replace(staging, target)
            except BaseException:
                try:
                    os.unlink(staging)
                except OSError:
                    pass
                raise

        for index, shard_blob in enumerate(shard_blobs):
            publish(shard_path(self.path, index), shard_blob)
        publish(self.path, blob)
        return WriteReport(
            path=self.path,
            file_bytes=len(blob) + sum(shard_sizes.values()),
            n_nodes=n,
            n_predicates=len(labels),
            n_triples=db.n_edges,
            elapsed=time.perf_counter() - start,
            tiers=tiers,
            payload_bytes=payload_bytes,
            dense_bytes=dense_sizes,
            n_shards=self.shards,
            shard_bytes=shard_sizes,
        )


def write_snapshot(
    db,
    path: Union[str, Path],
    cold_threshold: float = DEFAULT_COLD_THRESHOLD,
    version: int = VERSION,
    shards: int = 0,
) -> WriteReport:
    """Convenience wrapper: ``SnapshotWriter(path, ...).write(db)``.

    ``version=1`` writes the legacy unchecksummed layout (kept so the
    v1-compat path stays testable); the default is the current v2.
    ``shards=N`` (N >= 1) writes the v3 sharded layout: the block
    payloads split across ``<path>.shard0`` .. ``<path>.shardN-1``
    keyed by label hash, one checksum table per shard.
    """
    return SnapshotWriter(
        path, cold_threshold=cold_threshold, version=version, shards=shards
    ).write(db)
