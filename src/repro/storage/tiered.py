"""Tiered graph view: hot packed blocks + cold gap blocks, promoted
lazily and demoted under a residency budget.

:class:`TieredGraphView` opens a snapshot and satisfies the adjacency
interface the SOI solver and the pruning stage consume from
:class:`~repro.graph.graph.Graph`:

* ``n_nodes`` / ``n_edges`` / ``labels`` / ``node_name`` /
  ``node_index`` / ``has_node`` / ``nodes_bitset``
* ``matrices()`` returning a mapping ``label -> LabelMatrixPair``

The mapping is where the tiering lives.  *Hot* labels (stored dense)
are wrapped into packed :class:`AdjacencyMatrix` views at open time —
zero copies, solver-ready.  *Cold* labels (stored gap-encoded) occupy
only their compressed bytes until a query first asks for them; the
first ``matrices().get(label)`` **promotes** the label by decoding
both directions through :meth:`GapEncodedMatrix.to_adjacency` into
packed blocks, which are then cached like any hot label.  Residency
counters (:meth:`residency`) expose how much of the database is
actually materialized — the quantity behind the paper's 35 GB fully
dense vs 23 GB mixed-residency comparison (Sect. 3.3).

Residency is bounded, not just reported.  Every lookup refreshes the
label's position in a touch-ordered LRU; when
:attr:`residency_budget` is set, a promotion that pushes resident
packed bytes over the budget **demotes** the least-recently-touched
resident labels (gap labels drop their decoded blocks back to the
on-disk gap rows, dense labels drop their zero-copy wrappers), and
:meth:`enforce_budget` runs the same pass at query boundaries and
compacts the batched kernel's shared block.  Demotion keeps each
label's Eq. (13) summary vectors resident (they are tiny —
2 x n/8 bytes), so summary initialization and the batched kernel's
saturated-source shortcut never force a label back in; summaries of
never-promoted cold labels are likewise served straight from the
block table's row node ids without decoding a single row.

A view is read-only; it intentionally does **not** implement the
mutation or set-based traversal surface of :class:`Graph` (``add_edge``,
``successors`` over Python sets, ...).  Materialize via
:meth:`to_graph_database` when that surface is needed.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.bitvec import Bitset, LabelMatrixPair
from repro.errors import GraphError, SnapshotError
from repro.obs.logs import get_logger
from repro.obs.metrics import registry
from repro.obs.trace import current_tracer
from repro.storage.reader import SnapshotReader

logger = get_logger("storage.tiered")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for transient promotion I/O.

    Promotions read mmap'd snapshot bytes; on network filesystems and
    flaky disks those reads can fail *transiently* (``OSError`` /
    ``EIO``-style).  A promotion wrapped in this policy retries up to
    ``attempts`` total tries with ``base_delay * multiplier**k``
    sleeps, capped at ``max_delay``.  Only :class:`OSError` is
    retryable — a :class:`~repro.errors.SnapshotCorruptError` is a
    *permanent* verdict about the bytes and propagates immediately.
    ``sleep`` is injectable so tests run without real delays.
    """

    attempts: int = 3
    base_delay: float = 0.01
    max_delay: float = 0.5
    multiplier: float = 4.0
    sleep: Callable[[float], None] = field(default=time.sleep)

    def __post_init__(self):
        if self.attempts < 1:
            raise SnapshotError(
                f"retry attempts must be >= 1, got {self.attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise SnapshotError("retry delays must be non-negative")
        if self.multiplier < 1:
            raise SnapshotError(
                f"retry multiplier must be >= 1, got {self.multiplier}"
            )


@dataclass
class ResidencyReport:
    """How much of an open snapshot is materialized in memory."""

    n_labels: int
    hot_labels: int          # stored dense, currently resident
    cold_labels: int         # not resident (on-disk rows only)
    promotions: int          # cold labels decoded so far (re-decodes too)
    promoted_labels: Tuple[str, ...]
    resident_bytes: int      # packed blocks currently materialized
    on_disk_bytes: int       # snapshot file size
    demotions: int = 0       # labels dropped by the LRU pass so far
    demoted_labels: Tuple[str, ...] = ()
    resident_labels: int = 0     # labels currently materialized
    residency_budget: Optional[int] = None
    promotion_retries: int = 0   # transient I/O errors retried away

    @property
    def resident_ratio(self) -> float:
        if self.on_disk_bytes == 0:
            return 0.0
        return self.resident_bytes / self.on_disk_bytes

    @property
    def within_budget(self) -> Optional[bool]:
        if self.residency_budget is None:
            return None
        return self.resident_bytes <= self.residency_budget


class TieredMatrices:
    """Mapping ``label -> LabelMatrixPair`` with promote-on-first-touch.

    Lookups of hot or already-promoted labels are dict hits; the first
    lookup of a cold (or demoted) label materializes it.  Iteration
    (``keys`` / ``len`` / ``in``) never promotes, and
    :meth:`summaries` serves Eq. (13) summary vectors without
    promoting either.
    """

    def __init__(self, view: "TieredGraphView"):
        self._view = view

    def __getitem__(self, label: str) -> LabelMatrixPair:
        pair = self._view._pair(label)
        if pair is None:
            raise KeyError(label)
        return pair

    def get(self, label: str, default=None):
        pair = self._view._pair(label)
        return default if pair is None else pair

    def summaries(self, label: str) -> Optional[Tuple[Bitset, Bitset]]:
        """(forward, backward) Eq. (13) summaries, promotion-free."""
        return self._view.label_summaries(label)

    def __contains__(self, label: str) -> bool:
        return label in self._view._label_set

    def __iter__(self) -> Iterator[str]:
        return iter(self._view._labels)

    def __len__(self) -> int:
        return len(self._view._labels)

    def keys(self) -> Iterator[str]:
        return iter(self._view._labels)

    def values(self) -> Iterator[LabelMatrixPair]:
        for label in self._view._labels:
            yield self[label]

    def items(self) -> Iterator[Tuple[str, LabelMatrixPair]]:
        for label in self._view._labels:
            yield (label, self[label])


def _pair_resident_bytes(pair: LabelMatrixPair) -> int:
    total = 0
    for matrix in (pair.forward, pair.backward):
        if matrix._packed is not None:
            total += matrix._packed.nbytes
            total += matrix._row_nodes.nbytes + matrix._row_index.nbytes
    return total


class TieredGraphView:
    """A graph database served from a snapshot, tiered hot/cold."""

    def __init__(
        self,
        source: Union[str, Path, SnapshotReader],
        residency_budget: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ):
        if isinstance(source, SnapshotReader):
            self.reader = source
        else:
            self.reader = SnapshotReader(source)
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self._promotion_retries = 0
        reader = self.reader
        self._names: List[Hashable] = reader.node_terms()
        self._index: Dict[Hashable, int] = {
            name: i for i, name in enumerate(self._names)
        }
        self._labels: List[str] = reader.labels()
        self._label_set: Set[str] = set(self._labels)
        #: label -> storage tier ("dense" or "gap"), fixed by the file.
        self._tiers: Dict[str, str] = {
            label: reader.encoding_of(label) for label in self._labels
        }
        #: Resident pairs in LRU order (least-recently-touched first).
        self._pairs: "OrderedDict[str, LabelMatrixPair]" = OrderedDict()
        #: Eq. (13) summaries that outlive their pair (see module doc).
        self._summaries: Dict[str, Tuple[Bitset, Bitset]] = {}
        self._promoted: List[str] = []
        self._demoted: List[str] = []
        self.residency_budget = residency_budget
        for label in self._labels:
            if self._tiers[label] == "dense":
                self._materialize(label)
        self._matrices = TieredMatrices(self)
        self._batched = None

    # -- tier mechanics ---------------------------------------------------

    def _pair(self, label: str) -> LabelMatrixPair | None:
        pair = self._pairs.get(label)
        if pair is not None:
            self._pairs.move_to_end(label)  # LRU touch
            return pair
        if label not in self._label_set:
            return None
        return self.promote(label)

    def _with_retries(self, operation):
        """Run one promotion read under the view's retry policy.

        Only ``OSError`` retries (transient I/O); corruption verdicts
        (:class:`~repro.errors.SnapshotCorruptError`) and every other
        typed failure propagate on the first raise.
        """
        policy = self.retry_policy
        delay = policy.base_delay
        for attempt in range(policy.attempts):
            try:
                return operation()
            except OSError as error:
                if attempt + 1 >= policy.attempts:
                    raise
                self._promotion_retries += 1
                registry().counter("promotion_retries_total").inc()
                tracer = current_tracer()
                if tracer.enabled:
                    tracer.event(
                        "retry", attempt=attempt + 1,
                        error_type=type(error).__name__,
                    )
                logger.warning(
                    "transient promotion I/O error (attempt %d/%d): %s",
                    attempt + 1, policy.attempts, error,
                )
                policy.sleep(min(delay, policy.max_delay))
                delay *= policy.multiplier

    def _materialize(self, label: str) -> LabelMatrixPair:
        """Build the resident pair for a label (no budget check)."""
        tracer = current_tracer()
        if not tracer.enabled:
            return self._materialize_inner(label)
        tier = self._tiers[label]
        with tracer.span("promotion", label=label, tier=tier) as span:
            pair = self._materialize_inner(label)
            span.set_attribute("bytes", _pair_resident_bytes(pair))
            return pair

    def _materialize_inner(self, label: str) -> LabelMatrixPair:
        reader = self.reader
        pair = LabelMatrixPair(reader.n_nodes)
        if self._tiers[label] == "dense":
            pair.forward = self._with_retries(
                lambda: reader.dense_matrix(label, "forward")
            )
            pair.backward = self._with_retries(
                lambda: reader.dense_matrix(label, "backward")
            )
        else:
            pair.forward = self._with_retries(
                lambda: reader.gap_matrix(label, "forward").to_adjacency()
            )
            pair.backward = self._with_retries(
                lambda: reader.gap_matrix(label, "backward").to_adjacency()
            )
            self._promoted.append(label)
            registry().counter("promotions_total").inc()
        self._pairs[label] = pair  # lands at the MRU end
        self._summaries.setdefault(
            label, (pair.forward.summary, pair.backward.summary)
        )
        return pair

    def promote(self, label: str) -> LabelMatrixPair:
        """Materialize a label into packed matrices (idempotent).

        Gap-tier labels decode through ``to_adjacency``; demoted
        dense-tier labels re-wrap their zero-copy mmap views.  When a
        :attr:`residency_budget` is set, the promotion immediately
        sheds least-recently-touched *other* labels so mid-solve
        promotions respect the ceiling too.
        """
        pair = self._pairs.get(label)
        if pair is not None:
            self._pairs.move_to_end(label)
            return pair
        if label not in self._label_set:
            raise GraphError(f"unknown label: {label!r}")
        pair = self._materialize(label)
        if self.residency_budget is not None:
            self._shed(protect=label)
        return pair

    def promote_all(self) -> None:
        """Force-materialize every non-resident label (benchmarks,
        warm-up).  Ignores the budget; enforcement re-applies it."""
        for label in self._labels:
            if label not in self._pairs:
                self._materialize(label)

    def demote(self, label: str) -> int:
        """Drop a resident label's packed blocks; returns bytes freed.

        The label's Eq. (13) summaries stay resident, its batched
        segments are invalidated (reclaimed by the next compaction),
        and the next ``matrices().get(label)`` transparently
        re-materializes it from the on-disk rows.
        """
        pair = self._pairs.pop(label, None)
        if pair is None:
            raise GraphError(f"label not resident: {label!r}")
        freed = _pair_resident_bytes(pair)
        self._demoted.append(label)
        registry().counter("demotions_total").inc()
        tracer = current_tracer()
        if tracer.enabled:
            tracer.event("demotion", label=label, bytes=freed)
        if self._batched is not None:
            self._batched.invalidate(label)
        return freed

    def _shed(self, protect: Optional[str] = None) -> int:
        """Demote LRU labels until resident bytes fit the budget.

        ``protect`` (the label a mid-solve promotion just brought in)
        is never evicted, so the pair the solver is about to use stays
        valid even under a budget smaller than that single label; the
        boundary-time :meth:`enforce_budget` pass runs unprotected.
        """
        budget = self.residency_budget
        if budget is None:
            return 0
        demoted = 0
        while self.resident_bytes() > budget:
            victim = next(
                (lab for lab in self._pairs if lab != protect), None
            )
            if victim is None:
                break
            self.demote(victim)
            demoted += 1
        return demoted

    def enforce_budget(self, budget: Optional[int] = None) -> int:
        """Apply the residency budget now; returns labels demoted.

        Called at query boundaries: demotes least-recently-touched
        labels until resident packed bytes fit the budget (``None``
        keeps the current one), then compacts the batched kernel's
        shared block so demoted segments release their bytes as well.
        Safe to call any time no solve is in flight.
        """
        if budget is not None:
            self.residency_budget = budget
        demoted = self._shed()
        if self._batched is not None and (
            demoted or self._batched.stale_rows
        ):
            self._batched.compact()
        return demoted

    @property
    def promotions(self) -> int:
        return len(self._promoted)

    @property
    def demotions(self) -> int:
        return len(self._demoted)

    @property
    def promotion_retries(self) -> int:
        """Transient promotion I/O errors absorbed by backoff."""
        return self._promotion_retries

    def is_resident(self, label: str) -> bool:
        return label in self._pairs

    def resident_bytes(self) -> int:
        """Packed bytes currently materialized (the budgeted value)."""
        return sum(
            _pair_resident_bytes(pair) for pair in self._pairs.values()
        )

    def lru_labels(self) -> Tuple[str, ...]:
        """Resident labels, least-recently-touched first."""
        return tuple(self._pairs)

    def label_summaries(
        self, label: str
    ) -> Optional[Tuple[Bitset, Bitset]]:
        """The label's (forward, backward) Eq. (13) summary vectors,
        or ``None`` for an unknown label — never promotes.

        Resident and previously-materialized labels answer from the
        summary cache; a never-touched cold label's summaries are
        built from the block table's row node ids (non-empty rows are
        exactly the indexed ones), without decoding any row payload.
        """
        cached = self._summaries.get(label)
        if cached is not None:
            return cached
        if label not in self._label_set:
            return None
        n = self.reader.n_nodes
        summaries = tuple(
            Bitset.from_indices(n, self.reader.row_nodes(label, d))
            for d in ("forward", "backward")
        )
        self._summaries[label] = summaries
        return summaries

    def _hot_resident(self) -> int:
        """Dense-tier labels currently materialized."""
        return sum(
            1 for label in self._pairs if self._tiers[label] == "dense"
        )

    def residency(self) -> ResidencyReport:
        return ResidencyReport(
            n_labels=len(self._labels),
            hot_labels=self._hot_resident(),
            cold_labels=len(self._labels) - len(self._pairs),
            promotions=len(self._promoted),
            promoted_labels=tuple(self._promoted),
            resident_bytes=self.resident_bytes(),
            on_disk_bytes=self.reader.file_bytes,
            demotions=len(self._demoted),
            demoted_labels=tuple(self._demoted),
            resident_labels=len(self._pairs),
            residency_budget=self.residency_budget,
            promotion_retries=self._promotion_retries,
        )

    # -- Graph adjacency interface ------------------------------------------

    @property
    def n_nodes(self) -> int:
        return self.reader.n_nodes

    @property
    def n_edges(self) -> int:
        return self.reader.n_triples

    @property
    def n_triples(self) -> int:
        return self.reader.n_triples

    @property
    def labels(self) -> Set[str]:
        return set(self._labels)

    def matrices(self) -> TieredMatrices:
        return self._matrices

    def batched_blocks(self):
        """The view's shared multi-label block set (``batched`` kernel).

        Lazily created and filled as solver rounds touch labels.  A
        cold label promoted mid-solve simply *appends* its freshly
        decoded rows to the concatenated block on its first batched
        product — labels already stacked are never re-copied (the
        block grows geometrically, amortized O(1) per row).  A
        demotion invalidates the label's segments; the boundary-time
        :meth:`enforce_budget` compaction reclaims them.
        """
        if self._batched is None:
            from repro.bitvec.kernel import BatchedBlockSet

            self._batched = BatchedBlockSet(self.reader.n_nodes)
        return self._batched

    def label_matrix(self, label: str) -> LabelMatrixPair | None:
        return self._pair(label)

    def nodes(self) -> Iterator[Hashable]:
        return iter(self._names)

    def node_name(self, index: int) -> Hashable:
        return self._names[index]

    def node_index(self, name: Hashable) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise GraphError(f"unknown node: {name!r}") from None

    def has_node(self, name: Hashable) -> bool:
        return name in self._index

    def nodes_bitset(self, names: Iterable[Hashable]) -> Bitset:
        return Bitset.from_indices(
            self.n_nodes, (self.node_index(n) for n in names)
        )

    # -- materialization ---------------------------------------------------

    def triples(self) -> Iterator[Tuple[Hashable, str, Hashable]]:
        """Iterate all name triples (decodes cold blocks row by row
        without promoting them into the resident tier)."""
        return self.reader.iter_triples()

    def to_graph_database(self):
        """Fully materialize into a :class:`GraphDatabase`."""
        from repro.graph.database import GraphDatabase

        db = GraphDatabase()
        for s, p, o in self.triples():
            db.add_triple(s, p, o)
        return db

    def close(self) -> None:
        self.reader.close()

    def __repr__(self) -> str:
        report = (
            f"hot={self._hot_resident()}, "
            f"cold={len(self._labels) - len(self._pairs)}, "
            f"promoted={len(self._promoted)}, "
            f"demoted={len(self._demoted)}"
        )
        return (
            f"TieredGraphView(|O|={self.n_nodes}, "
            f"triples={self.n_triples}, {report})"
        )
