"""Tiered graph view: hot packed blocks + cold gap blocks, promoted lazily.

:class:`TieredGraphView` opens a snapshot and satisfies the adjacency
interface the SOI solver and the pruning stage consume from
:class:`~repro.graph.graph.Graph`:

* ``n_nodes`` / ``n_edges`` / ``labels`` / ``node_name`` /
  ``node_index`` / ``has_node`` / ``nodes_bitset``
* ``matrices()`` returning a mapping ``label -> LabelMatrixPair``

The mapping is where the tiering lives.  *Hot* labels (stored dense)
are wrapped into packed :class:`AdjacencyMatrix` views at open time —
zero copies, solver-ready.  *Cold* labels (stored gap-encoded) occupy
only their compressed bytes until a query first asks for them; the
first ``matrices().get(label)`` **promotes** the label by decoding
both directions through :meth:`GapEncodedMatrix.to_adjacency` into
packed blocks, which are then cached like any hot label.  Residency
counters (:meth:`residency`) expose how much of the database is
actually materialized — the quantity behind the paper's 35 GB fully
dense vs 23 GB mixed-residency comparison (Sect. 3.3).

A view is read-only; it intentionally does **not** implement the
mutation or set-based traversal surface of :class:`Graph` (``add_edge``,
``successors`` over Python sets, ...).  Materialize via
:meth:`to_graph_database` when that surface is needed.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Hashable, Iterable, Iterator, List, Set, Tuple, Union

from repro.bitvec import Bitset, LabelMatrixPair
from repro.bitvec.gap import GapEncodedMatrix
from repro.errors import GraphError
from repro.storage.reader import SnapshotReader


@dataclass
class ResidencyReport:
    """How much of an open snapshot is materialized in memory."""

    n_labels: int
    hot_labels: int          # stored dense, resident since open
    cold_labels: int         # still gap-encoded on disk
    promotions: int          # cold labels decoded so far
    promoted_labels: Tuple[str, ...]
    resident_bytes: int      # packed blocks currently materialized
    on_disk_bytes: int       # snapshot file size

    @property
    def resident_ratio(self) -> float:
        if self.on_disk_bytes == 0:
            return 0.0
        return self.resident_bytes / self.on_disk_bytes


class TieredMatrices:
    """Mapping ``label -> LabelMatrixPair`` with promote-on-first-touch.

    Lookups of hot or already-promoted labels are dict hits; the first
    lookup of a cold label decodes it.  Iteration (``keys`` / ``len`` /
    ``in``) never promotes.
    """

    def __init__(self, view: "TieredGraphView"):
        self._view = view

    def __getitem__(self, label: str) -> LabelMatrixPair:
        pair = self._view._pair(label)
        if pair is None:
            raise KeyError(label)
        return pair

    def get(self, label: str, default=None):
        pair = self._view._pair(label)
        return default if pair is None else pair

    def __contains__(self, label: str) -> bool:
        return label in self._view._label_set

    def __iter__(self) -> Iterator[str]:
        return iter(self._view._labels)

    def __len__(self) -> int:
        return len(self._view._labels)

    def keys(self) -> Iterator[str]:
        return iter(self._view._labels)

    def values(self) -> Iterator[LabelMatrixPair]:
        for label in self._view._labels:
            yield self[label]

    def items(self) -> Iterator[Tuple[str, LabelMatrixPair]]:
        for label in self._view._labels:
            yield (label, self[label])


def _pair_resident_bytes(pair: LabelMatrixPair) -> int:
    total = 0
    for matrix in (pair.forward, pair.backward):
        if matrix._packed is not None:
            total += matrix._packed.nbytes
            total += matrix._row_nodes.nbytes + matrix._row_index.nbytes
    return total


class TieredGraphView:
    """A graph database served from a snapshot, tiered hot/cold."""

    def __init__(self, source: Union[str, Path, SnapshotReader]):
        if isinstance(source, SnapshotReader):
            self.reader = source
        else:
            self.reader = SnapshotReader(source)
        reader = self.reader
        self._names: List[Hashable] = reader.node_terms()
        self._index: Dict[Hashable, int] = {
            name: i for i, name in enumerate(self._names)
        }
        self._labels: List[str] = reader.labels()
        self._label_set: Set[str] = set(self._labels)
        self._pairs: Dict[str, LabelMatrixPair] = {}
        self._cold: Dict[str, Tuple[GapEncodedMatrix, GapEncodedMatrix]] = {}
        self._hot_labels: Set[str] = set()
        self._promoted: List[str] = []
        for label in self._labels:
            if reader.encoding_of(label) == "dense":
                pair = LabelMatrixPair(reader.n_nodes)
                pair.forward = reader.dense_matrix(label, "forward")
                pair.backward = reader.dense_matrix(label, "backward")
                self._pairs[label] = pair
                self._hot_labels.add(label)
            else:
                self._cold[label] = (
                    reader.gap_matrix(label, "forward"),
                    reader.gap_matrix(label, "backward"),
                )
        self._matrices = TieredMatrices(self)
        self._batched = None

    # -- tier mechanics ---------------------------------------------------

    def _pair(self, label: str) -> LabelMatrixPair | None:
        pair = self._pairs.get(label)
        if pair is not None:
            return pair
        cold = self._cold.get(label)
        if cold is None:
            return None
        return self.promote(label)

    def promote(self, label: str) -> LabelMatrixPair:
        """Decode a cold label into packed matrices (idempotent)."""
        pair = self._pairs.get(label)
        if pair is not None:
            return pair
        try:
            forward, backward = self._cold.pop(label)
        except KeyError:
            raise GraphError(f"unknown label: {label!r}") from None
        pair = LabelMatrixPair(self.reader.n_nodes)
        pair.forward = forward.to_adjacency()
        pair.backward = backward.to_adjacency()
        self._pairs[label] = pair
        self._promoted.append(label)
        return pair

    def promote_all(self) -> None:
        """Force-decode every cold label (benchmarks, warm-up)."""
        for label in list(self._cold):
            self.promote(label)

    @property
    def promotions(self) -> int:
        return len(self._promoted)

    def is_resident(self, label: str) -> bool:
        return label in self._pairs

    def residency(self) -> ResidencyReport:
        resident = sum(
            _pair_resident_bytes(pair) for pair in self._pairs.values()
        )
        return ResidencyReport(
            n_labels=len(self._labels),
            hot_labels=len(self._hot_labels),
            cold_labels=len(self._cold),
            promotions=len(self._promoted),
            promoted_labels=tuple(self._promoted),
            resident_bytes=resident,
            on_disk_bytes=self.reader.file_bytes,
        )

    # -- Graph adjacency interface ------------------------------------------

    @property
    def n_nodes(self) -> int:
        return self.reader.n_nodes

    @property
    def n_edges(self) -> int:
        return self.reader.n_triples

    @property
    def n_triples(self) -> int:
        return self.reader.n_triples

    @property
    def labels(self) -> Set[str]:
        return set(self._labels)

    def matrices(self) -> TieredMatrices:
        return self._matrices

    def batched_blocks(self):
        """The view's shared multi-label block set (``batched`` kernel).

        Lazily created and filled as solver rounds touch labels.  A
        cold label promoted mid-solve simply *appends* its freshly
        decoded rows to the concatenated block on its first batched
        product — labels already stacked are never re-copied (the
        block grows geometrically, amortized O(1) per row).
        """
        if self._batched is None:
            from repro.bitvec.kernel import BatchedBlockSet

            self._batched = BatchedBlockSet(self.reader.n_nodes)
        return self._batched

    def label_matrix(self, label: str) -> LabelMatrixPair | None:
        return self._pair(label)

    def nodes(self) -> Iterator[Hashable]:
        return iter(self._names)

    def node_name(self, index: int) -> Hashable:
        return self._names[index]

    def node_index(self, name: Hashable) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise GraphError(f"unknown node: {name!r}") from None

    def has_node(self, name: Hashable) -> bool:
        return name in self._index

    def nodes_bitset(self, names: Iterable[Hashable]) -> Bitset:
        return Bitset.from_indices(
            self.n_nodes, (self.node_index(n) for n in names)
        )

    # -- materialization ---------------------------------------------------

    def triples(self) -> Iterator[Tuple[Hashable, str, Hashable]]:
        """Iterate all name triples (decodes cold blocks row by row
        without promoting them into the resident tier)."""
        return self.reader.iter_triples()

    def to_graph_database(self):
        """Fully materialize into a :class:`GraphDatabase`."""
        from repro.graph.database import GraphDatabase

        db = GraphDatabase()
        for s, p, o in self.triples():
            db.add_triple(s, p, o)
        return db

    def close(self) -> None:
        self.reader.close()

    def __repr__(self) -> str:
        report = (
            f"hot={len(self._hot_labels)}, cold={len(self._cold)}, "
            f"promoted={len(self._promoted)}"
        )
        return (
            f"TieredGraphView(|O|={self.n_nodes}, "
            f"triples={self.n_triples}, {report})"
        )
