"""On-disk snapshot store (binary format + tiered residency).

The persistence layer of the reproduction: build a snapshot once
(``repro db build``), then open it in any number of processes without
re-parsing N-Triples text.  Hot labels arrive as zero-copy packed
blocks; cold labels stay gap-encoded on disk until first touch
(see :mod:`repro.storage.tiered`).

Public surface:

* :func:`write_snapshot` / :class:`SnapshotWriter` — serialize a
  graph database (density heuristic decides each label's tier);
* :class:`SnapshotReader` — mmap a snapshot, decode dictionaries and
  the block table, serve matrix views;
* :class:`TieredGraphView` — the solver-facing adjacency view with
  lazy label promotion and residency counters;
* :class:`SnapshotInfo` / :class:`WriteReport` /
  :class:`ResidencyReport` — reporting structures.
"""

from repro.storage.checksum import crc32c
from repro.storage.format import MAGIC, VERSION, VERSION_V1
from repro.storage.reader import (
    LabelBlockInfo,
    SectionCheck,
    SnapshotInfo,
    SnapshotReader,
    VerificationReport,
)
from repro.storage.tiered import (
    ResidencyReport,
    RetryPolicy,
    TieredGraphView,
    TieredMatrices,
)
from repro.storage.writer import (
    DEFAULT_COLD_THRESHOLD,
    SnapshotWriter,
    WriteReport,
    write_snapshot,
)

__all__ = [
    "MAGIC",
    "VERSION",
    "VERSION_V1",
    "crc32c",
    "SectionCheck",
    "VerificationReport",
    "SnapshotWriter",
    "SnapshotReader",
    "SnapshotInfo",
    "LabelBlockInfo",
    "WriteReport",
    "write_snapshot",
    "DEFAULT_COLD_THRESHOLD",
    "TieredGraphView",
    "TieredMatrices",
    "ResidencyReport",
    "RetryPolicy",
]
