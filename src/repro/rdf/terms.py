"""RDF terms: IRIs, literals, and query variables.

The paper abstracts IRIs into intuitive names; this module keeps the
full term structure so the N-Triples reader, the triple store and the
SPARQL parser can interoperate, while the graph layer may continue to
use plain strings (an :class:`Iri` stringifies to its IRI text).
"""

from __future__ import annotations

from typing import Union

from repro.errors import TermError

# XSD datatype shorthands used by the literal parser.
XSD_STRING = "http://www.w3.org/2001/XMLSchema#string"
XSD_INTEGER = "http://www.w3.org/2001/XMLSchema#integer"
XSD_DECIMAL = "http://www.w3.org/2001/XMLSchema#decimal"
XSD_BOOLEAN = "http://www.w3.org/2001/XMLSchema#boolean"


class Iri:
    """An IRI reference, e.g. ``<http://example.org/Alice>``."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        if not value:
            raise TermError("IRI must be non-empty")
        if any(c in value for c in "<>\"{}|^`") or any(
            ord(c) <= 0x20 for c in value
        ):
            raise TermError(f"invalid character in IRI: {value!r}")
        self.value = value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Iri) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Iri", self.value))

    def __str__(self) -> str:
        return self.value

    def __repr__(self) -> str:
        return f"Iri({self.value!r})"

    def n3(self) -> str:
        return f"<{self.value}>"


class RdfLiteral:
    """A typed or plain RDF literal."""

    __slots__ = ("lexical", "datatype", "language")

    def __init__(
        self,
        lexical: str,
        datatype: str = XSD_STRING,
        language: str | None = None,
    ):
        if language is not None and datatype != XSD_STRING:
            raise TermError("language-tagged literals must be plain strings")
        self.lexical = str(lexical)
        self.datatype = datatype
        self.language = language

    @classmethod
    def integer(cls, value: int) -> "RdfLiteral":
        return cls(str(int(value)), XSD_INTEGER)

    @classmethod
    def boolean(cls, value: bool) -> "RdfLiteral":
        return cls("true" if value else "false", XSD_BOOLEAN)

    def python_value(self) -> Union[str, int, float, bool]:
        """Best-effort conversion to a native Python value."""
        if self.datatype == XSD_INTEGER:
            return int(self.lexical)
        if self.datatype == XSD_DECIMAL:
            return float(self.lexical)
        if self.datatype == XSD_BOOLEAN:
            return self.lexical == "true"
        return self.lexical

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RdfLiteral)
            and self.lexical == other.lexical
            and self.datatype == other.datatype
            and self.language == other.language
        )

    def __hash__(self) -> int:
        return hash(("RdfLiteral", self.lexical, self.datatype, self.language))

    def __str__(self) -> str:
        return self.lexical

    def __repr__(self) -> str:
        if self.language:
            return f"RdfLiteral({self.lexical!r}, lang={self.language!r})"
        if self.datatype != XSD_STRING:
            return f"RdfLiteral({self.lexical!r}, {self.datatype!r})"
        return f"RdfLiteral({self.lexical!r})"

    def n3(self) -> str:
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        if self.language:
            return f'"{escaped}"@{self.language}'
        if self.datatype != XSD_STRING:
            return f'"{escaped}"^^<{self.datatype}>'
        return f'"{escaped}"'


class Variable:
    """A SPARQL query variable ``?name``."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if not name or not all(c.isalnum() or c == "_" for c in name):
            raise TermError(f"invalid variable name: {name!r}")
        self.name = name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Variable) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Variable", self.name))

    def __str__(self) -> str:
        return f"?{self.name}"

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


Term = Union[Iri, RdfLiteral]
PatternTerm = Union[Iri, RdfLiteral, Variable]


def is_constant(term: PatternTerm) -> bool:
    """True for IRIs and literals; False for variables."""
    return not isinstance(term, Variable)
