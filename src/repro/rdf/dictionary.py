"""Dictionary encoding of RDF terms.

Triple stores (and the SOI solver's bit-vectors) work over dense
integer ids.  A :class:`TermDictionary` is a bidirectional mapping
from terms to ids, append-only, with separate id spaces optional via
multiple instances (the store keeps one for nodes and one for
predicates, matching the paper's node set vs. alphabet split).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Tuple

from repro.errors import StoreError


class TermDictionary:
    """Append-only bidirectional term <-> dense-id mapping."""

    __slots__ = ("_by_term", "_by_id")

    def __init__(self):
        self._by_term: Dict[Hashable, int] = {}
        self._by_id: List[Hashable] = []

    @classmethod
    def from_terms(cls, terms: Iterable[Hashable]) -> "TermDictionary":
        """Rebuild a dictionary from its id-ordered term sequence.

        The inverse of :meth:`items`: term ``i`` of the sequence gets
        id ``i``, which is what snapshot deserialization relies on.
        A repeated term would silently remap every later id by one
        slot, so duplicates raise :class:`StoreError` instead.
        """
        out = cls()
        for idx, term in enumerate(terms):
            if term in out._by_term:
                raise StoreError(
                    f"duplicate term at id {idx}: {term!r} already has "
                    f"id {out._by_term[term]}"
                )
            out._by_term[term] = idx
            out._by_id.append(term)
        return out

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, term: Hashable) -> bool:
        return term in self._by_term

    def encode(self, term: Hashable) -> int:
        """Return the id of ``term``, assigning a fresh one if new."""
        idx = self._by_term.get(term)
        if idx is None:
            idx = len(self._by_id)
            self._by_term[term] = idx
            self._by_id.append(term)
        return idx

    def lookup(self, term: Hashable) -> int | None:
        """The id of ``term`` or None when unknown (no insertion)."""
        return self._by_term.get(term)

    def require(self, term: Hashable) -> int:
        idx = self._by_term.get(term)
        if idx is None:
            raise StoreError(f"unknown term: {term!r}")
        return idx

    def decode(self, idx: int) -> Hashable:
        try:
            return self._by_id[idx]
        except IndexError:
            raise StoreError(f"unknown term id: {idx}") from None

    def terms(self) -> Iterator[Hashable]:
        return iter(self._by_id)

    def items(self) -> Iterator[Tuple[int, Hashable]]:
        """(id, term) pairs in id order — the serialization order."""
        return enumerate(self._by_id)

    def __repr__(self) -> str:
        return f"TermDictionary(|terms|={len(self)})"
