"""RDF substrate: terms, dictionary encoding, N-Triples I/O."""

from repro.rdf.dictionary import TermDictionary
from repro.rdf.ntriples import (
    BLANK_NS,
    parse,
    parse_line,
    serialize,
    serialize_triple,
)
from repro.rdf.terms import (
    Iri,
    PatternTerm,
    RdfLiteral,
    Term,
    Variable,
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_INTEGER,
    XSD_STRING,
    is_constant,
)

__all__ = [
    "Iri",
    "RdfLiteral",
    "Variable",
    "Term",
    "PatternTerm",
    "is_constant",
    "TermDictionary",
    "parse",
    "parse_line",
    "serialize",
    "serialize_triple",
    "BLANK_NS",
    "XSD_STRING",
    "XSD_INTEGER",
    "XSD_DECIMAL",
    "XSD_BOOLEAN",
]
