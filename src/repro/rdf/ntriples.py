"""A line-oriented N-Triples reader and writer.

Supports the subset of N-Triples needed for dataset interchange:
IRIs in angle brackets, plain/typed/language-tagged literals with the
usual string escapes, ``#`` comments and blank lines.  Blank nodes are
accepted as ``_:label`` and surfaced as IRIs in a reserved namespace
(the paper's data model has no blank nodes).
"""

from __future__ import annotations

from typing import Iterable, Iterator, TextIO, Tuple

from repro.errors import ParseError, TermError
from repro.rdf.terms import Iri, RdfLiteral, Term, XSD_STRING

BLANK_NS = "urn:repro:blank:"

Triple = Tuple[Iri, Iri, Term]

_ESCAPES = {
    "t": "\t",
    "n": "\n",
    "r": "\r",
    '"': '"',
    "\\": "\\",
}


class _LineScanner:
    """Character scanner over a single N-Triples line."""

    def __init__(self, text: str, line_no: int):
        self.text = text
        self.pos = 0
        self.line_no = line_no

    def error(self, message: str) -> ParseError:
        return ParseError(message, line=self.line_no, column=self.pos + 1)

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t":
            self.pos += 1

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, char: str) -> None:
        if self.peek() != char:
            raise self.error(f"expected {char!r}, found {self.peek()!r}")
        self.pos += 1

    def read_iri(self) -> Iri:
        self.expect("<")
        start = self.pos
        end = self.text.find(">", start)
        if end < 0:
            raise self.error("unterminated IRI")
        value = self.text[start:end]
        self.pos = end + 1
        try:
            return Iri(value)
        except TermError as exc:
            raise self.error(str(exc)) from exc

    def read_blank(self) -> Iri:
        # _:label -> IRI in the reserved blank namespace.
        self.pos += 2  # consume "_:"
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_-"
        ):
            self.pos += 1
        if self.pos == start:
            raise self.error("empty blank-node label")
        return Iri(BLANK_NS + self.text[start : self.pos])

    def read_string_body(self) -> str:
        self.expect('"')
        out = []
        while True:
            if self.at_end():
                raise self.error("unterminated string literal")
            char = self.text[self.pos]
            self.pos += 1
            if char == '"':
                return "".join(out)
            if char == "\\":
                if self.at_end():
                    raise self.error("dangling escape")
                esc = self.text[self.pos]
                self.pos += 1
                if esc in _ESCAPES:
                    out.append(_ESCAPES[esc])
                elif esc == "u":
                    out.append(self._read_unicode(4))
                elif esc == "U":
                    out.append(self._read_unicode(8))
                else:
                    raise self.error(f"unknown escape: \\{esc}")
            else:
                out.append(char)

    def _read_unicode(self, width: int) -> str:
        hexdigits = self.text[self.pos : self.pos + width]
        if len(hexdigits) < width:
            raise self.error("truncated unicode escape")
        try:
            code = int(hexdigits, 16)
        except ValueError:
            raise self.error(f"bad unicode escape: {hexdigits!r}") from None
        self.pos += width
        return chr(code)

    def read_literal(self) -> RdfLiteral:
        body = self.read_string_body()
        if self.peek() == "@":
            self.pos += 1
            start = self.pos
            while self.pos < len(self.text) and (
                self.text[self.pos].isalnum() or self.text[self.pos] == "-"
            ):
                self.pos += 1
            if self.pos == start:
                raise self.error("empty language tag")
            return RdfLiteral(body, XSD_STRING, self.text[start : self.pos])
        if self.text.startswith("^^", self.pos):
            self.pos += 2
            datatype = self.read_iri()
            return RdfLiteral(body, datatype.value)
        return RdfLiteral(body)

    def read_subject(self) -> Iri:
        if self.peek() == "<":
            return self.read_iri()
        if self.text.startswith("_:", self.pos):
            return self.read_blank()
        raise self.error("subject must be an IRI or blank node")

    def read_object(self) -> Term:
        if self.peek() == "<":
            return self.read_iri()
        if self.text.startswith("_:", self.pos):
            return self.read_blank()
        if self.peek() == '"':
            return self.read_literal()
        raise self.error("object must be an IRI, blank node, or literal")


def parse_line(line: str, line_no: int = 1) -> Triple | None:
    """Parse one N-Triples line; None for blank/comment lines."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    scanner = _LineScanner(stripped, line_no)
    subject = scanner.read_subject()
    scanner.skip_ws()
    predicate = scanner.read_iri()
    scanner.skip_ws()
    obj = scanner.read_object()
    scanner.skip_ws()
    scanner.expect(".")
    scanner.skip_ws()
    if not scanner.at_end():
        raise scanner.error("trailing content after '.'")
    return (subject, predicate, obj)


def parse(source: str | TextIO) -> Iterator[Triple]:
    """Parse N-Triples text or a file-like object, yielding triples."""
    lines = source.splitlines() if isinstance(source, str) else source
    for line_no, line in enumerate(lines, start=1):
        triple = parse_line(line, line_no)
        if triple is not None:
            yield triple


def serialize_triple(triple: Triple) -> str:
    subject, predicate, obj = triple
    return f"{subject.n3()} {predicate.n3()} {obj.n3()} ."


def serialize(triples: Iterable[Triple]) -> str:
    """Render triples as N-Triples text (one statement per line)."""
    return "\n".join(serialize_triple(t) for t in triples) + "\n"
