"""When is dual simulation pruning worth it?  (paper Sect. 5.3)

The paper's recommendation: *"use dual simulation for pruning in
cases where queries produce large intermediate results.  Such cases
can usually be detected employing database statistics for join result
size estimation, also used for join order optimization."*  And the
paper's own conclusion adds that such guidelines "make sense on a
per-system and per-data basis" — the same query may deserve pruning
in front of a materializing engine but not in front of one that
propagates bindings.

This module implements that guideline as a profile-aware advisor:

* ``rdfox-like``    — System-R style cardinality estimation over the
  static join order with *materialized* extents: every triple pattern
  contributes its full extent, joins shrink by shared-variable
  distinct counts.  Large estimates here mean large hash-join inputs,
  the case where pruning shines (Table 4).
* ``virtuoso-like`` — greedy binding-propagating estimation: the
  per-step matches an index nested-loop engine touches.  These are
  usually tiny, which is why the paper finds few wins in Table 5.

The verdict compares the estimated join work against an estimate of
the dual simulation cost (touched predicate extents times a small
fixpoint constant).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.rdf.terms import Variable
from repro.sparql.ast import (
    BGP,
    Filter,
    GraphPattern,
    Join,
    LeftJoin,
    SelectQuery,
    TriplePattern,
    Union,
    iter_triple_patterns,
)
from repro.sparql.normalize import flatten, merge_bgps
from repro.sparql.parser import parse_query
from repro.store.optimizer import order_bgp
from repro.store.statistics import StoreStatistics
from repro.store.triple_store import TripleStore


@dataclass
class PruningAdvice:
    """The advisor's verdict for one query."""

    recommended: bool
    profile: str
    estimated_join_work: float
    estimated_simulation_work: float
    peak_intermediate: float
    step_estimates: List[float] = field(default_factory=list)

    @property
    def work_ratio(self) -> float:
        if self.estimated_simulation_work == 0:
            return float("inf")
        return self.estimated_join_work / self.estimated_simulation_work


class PruningAdvisor:
    """Statistics-based advisor over one store."""

    #: Pruning is recommended when estimated join work exceeds the
    #: estimated simulation work by this factor...
    DEFAULT_THRESHOLD = 1.0
    #: ...and the peak intermediate is at least this large ("large
    #: intermediate results" is an absolute notion: tiny queries never
    #: amortize the pruning pass, however their ratio looks).
    DEFAULT_MIN_INTERMEDIATE = 1000.0
    #: Per-extent cost of the fixpoint relative to per-row join work:
    #: ~4 revisits per inequality, discounted by the 64-bit word
    #: parallelism of the bit-matrix products (4/16 = 0.25).
    DEFAULT_SIMULATION_COST_FACTOR = 0.25

    def __init__(
        self,
        store: TripleStore,
        stats: Optional[StoreStatistics] = None,
        threshold: float = DEFAULT_THRESHOLD,
        min_intermediate: float = DEFAULT_MIN_INTERMEDIATE,
        simulation_cost_factor: float = DEFAULT_SIMULATION_COST_FACTOR,
    ):
        self.store = store
        self.stats = stats or StoreStatistics(store)
        self.threshold = threshold
        self.min_intermediate = min_intermediate
        self.simulation_cost_factor = simulation_cost_factor

    # -- pattern-level statistics -------------------------------------------

    def _extent(self, pattern: TriplePattern) -> float:
        if isinstance(pattern.predicate, Variable):
            return float(self.stats.total_triples)
        p = self.store.predicates.lookup(pattern.predicate)
        if p is None:
            return 0.0
        base = float(self.stats.predicate_count.get(p, 0))
        # Constants select a fraction of the extent.
        if not isinstance(pattern.subject, Variable):
            base /= max(1, self.stats.subject_count.get(p, 1))
        if not isinstance(pattern.object, Variable):
            base /= max(1, self.stats.object_count.get(p, 1))
        return base

    def _var_distincts(self, pattern: TriplePattern) -> Dict[Variable, float]:
        out: Dict[Variable, float] = {}
        if isinstance(pattern.predicate, Variable):
            n = float(max(1, self.store.n_nodes))
            for term in (pattern.subject, pattern.object):
                if isinstance(term, Variable):
                    out[term] = n
            return out
        p = self.store.predicates.lookup(pattern.predicate)
        subjects = float(max(1, self.stats.subject_count.get(p, 1)))
        objects = float(max(1, self.stats.object_count.get(p, 1)))
        if isinstance(pattern.subject, Variable):
            out[pattern.subject] = subjects
        if isinstance(pattern.object, Variable):
            out[pattern.object] = min(out.get(pattern.object, objects), objects)
        return out

    # -- estimation per profile ------------------------------------------------

    def _steps_materialize(self, bgp: BGP) -> List[float]:
        """System-R estimates over the static order, full extents."""
        ordered = order_bgp(
            bgp.triples, self.stats, self.store, ordering="static"
        )
        steps: List[float] = []
        size: Optional[float] = None
        var_distinct: Dict[Variable, float] = {}
        for pattern in ordered:
            extent = self._extent(pattern)
            distincts = self._var_distincts(pattern)
            if size is None:
                size = extent
            else:
                shared = set(distincts) & set(var_distinct)
                denominator = 1.0
                for variable in shared:
                    denominator *= max(
                        min(var_distinct[variable], size),
                        min(distincts[variable], extent),
                        1.0,
                    )
                size = size * extent / denominator
            for variable, count in distincts.items():
                var_distinct[variable] = min(
                    var_distinct.get(variable, count), count
                )
            steps.append(size)
        return steps

    def _steps_nested(self, bgp: BGP) -> List[float]:
        """Binding-propagating estimates over the greedy order."""
        ordered = order_bgp(
            bgp.triples, self.stats, self.store, ordering="greedy"
        )
        steps: List[float] = []
        bound: set = set()
        size = 1.0
        for pattern in ordered:
            step = self.stats.estimate_pattern(pattern, bound, self.store)
            size *= max(step, 1e-9)
            bound |= {
                term
                for term in (pattern.subject, pattern.predicate,
                             pattern.object)
                if isinstance(term, Variable)
            }
            steps.append(size)
        return steps

    def _collect_steps(
        self, pattern: GraphPattern, profile: str
    ) -> List[float]:
        if isinstance(pattern, BGP):
            if profile == "rdfox-like":
                return self._steps_materialize(pattern)
            return self._steps_nested(pattern)
        if isinstance(pattern, (Join, LeftJoin, Union)):
            return self._collect_steps(pattern.left, profile) + (
                self._collect_steps(pattern.right, profile)
            )
        if isinstance(pattern, Filter):
            return self._collect_steps(pattern.pattern, profile)
        return []

    def _simulation_work(self, pattern: GraphPattern) -> float:
        """Touched predicate extents x a small fixpoint constant."""
        work = 0.0
        for triple in iter_triple_patterns(pattern):
            if isinstance(triple.predicate, Variable):
                work += self.stats.total_triples
                continue
            p = self.store.predicates.lookup(triple.predicate)
            if p is not None:
                work += self.stats.predicate_count.get(p, 0)
        return self.simulation_cost_factor * work

    # -- verdict --------------------------------------------------------------------

    def advise(
        self, query: SelectQuery | str, profile: str = "rdfox-like"
    ) -> PruningAdvice:
        if profile not in ("rdfox-like", "virtuoso-like"):
            raise ValueError(f"unknown profile: {profile!r}")
        if isinstance(query, str):
            query = parse_query(query)
        pattern = merge_bgps(flatten(query.pattern))
        steps = self._collect_steps(pattern, profile)
        join_work = sum(steps)
        sim_work = self._simulation_work(pattern)
        peak = max(steps) if steps else 0.0
        recommended = (
            join_work > self.threshold * sim_work
            and peak >= self.min_intermediate
        )
        return PruningAdvice(
            recommended=recommended,
            profile=profile,
            estimated_join_work=join_work,
            estimated_simulation_work=sim_work,
            peak_intermediate=peak,
            step_estimates=steps,
        )
