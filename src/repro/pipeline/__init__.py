"""End-to-end pruned query processing + the pruning advisor."""

from repro.pipeline.advisor import PruningAdvice, PruningAdvisor
from repro.pipeline.pruned_query import (
    PipelineReport,
    PruneOutcome,
    PruningPipeline,
)

__all__ = [
    "PruningPipeline",
    "PruneOutcome",
    "PipelineReport",
    "PruningAdvisor",
    "PruningAdvice",
]
