"""End-to-end pruned query processing (paper Sect. 5).

The pipeline mirrors the paper's experimental setup:

1. parse the query and normalize it into union-free branches;
2. compile each branch to an SOI and solve it (SPARQLSIM);
3. prune the database to the retained triples;
4. hand the *original* query to a conventional join engine, once on
   the full store and once on the pruned store;
5. report result counts, required triples, timings, and whether the
   pruned evaluation returned exactly the full result set (it must,
   by Theorem 2).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro._deprecation import deprecated_call
from repro.core.checkpoint import (
    ExecutionLimits,
    PHASE_DYNAMIC,
    PHASE_STATIC,
    SolverCheckpoint,
)
from repro.core.compiler import CompiledQuery, compile_query
from repro.core.pruning import PruneResult, prune
from repro.core.solver import SolverOptions, SolverResult, solve
from repro.errors import DeadlineExceededError
from repro.graph.database import GraphDatabase
from repro.obs.trace import current_tracer
from repro.sparql.ast import SelectQuery
from repro.sparql.parser import parse_query
from repro.store.engine import QueryEngine, QueryResult
from repro.store.triple_store import TripleStore


@dataclass
class PruneOutcome:
    """Artifacts of the pruning stage for one query."""

    query: SelectQuery
    compiled: List[CompiledQuery]
    solver_results: List[SolverResult]
    prune_result: PruneResult
    pruned_store: TripleStore
    t_simulation: float  # SOI solve + triple extraction (t_SPARQLSIM)

    @property
    def triples_after_pruning(self) -> int:
        return self.prune_result.n_triples_after

    @property
    def total_rounds(self) -> int:
        return sum(r.report.rounds for r in self.solver_results)


@dataclass
class PruneSuspension:
    """A pruning stage preempted mid-way (time quantum expired).

    ``branch_states`` holds one
    :class:`~repro.core.checkpoint.SolverCheckpoint` per union branch
    started so far: entries before ``branch_index`` are *completed*
    branches frozen as checkpoints with empty worklists (resuming one
    just rehydrates its rows and counters), the entry at
    ``branch_index`` — when present — is a genuine mid-solve
    suspension.  ``t_simulation`` accumulates prune-stage wall time
    across the segments so the final
    :attr:`PruneOutcome.t_simulation` matches an uninterrupted run's
    accounting.
    """

    query: SelectQuery
    branch_index: int
    branch_states: List[SolverCheckpoint] = field(default_factory=list)
    t_simulation: float = 0.0


def _frozen_branch_state(
    result: SolverResult, ordering: str
) -> SolverCheckpoint:
    """A completed branch as an empty-worklist checkpoint."""
    phase = PHASE_DYNAMIC if ordering == "dynamic" else PHASE_STATIC
    return SolverCheckpoint.capture(
        phase, result.data.n_nodes, result._rows, result.report,
        result.report.elapsed,
    )


def _remaining_limits(
    limits: Optional[ExecutionLimits], spent_ms: float
) -> Optional[ExecutionLimits]:
    """The per-branch budget left after ``spent_ms`` of this call.

    The quantum clamps at zero (a zero quantum still guarantees one
    evaluation of progress); an exhausted deadline raises immediately
    rather than handing the solver an invalid bound.
    """
    if limits is None:
        return None
    quantum = limits.quantum_ms
    if quantum is not None:
        quantum = max(0.0, quantum - spent_ms)
    deadline = limits.deadline_ms
    if deadline is not None:
        deadline -= spent_ms
        if deadline <= 0:
            raise DeadlineExceededError(
                f"deadline of {limits.deadline_ms:g} ms exhausted "
                "between union branches"
            )
    return ExecutionLimits(
        quantum_ms=quantum,
        deadline_ms=deadline,
        clock=limits.clock,
        preempt_after=limits.preempt_after,
    )


@dataclass
class PipelineReport:
    """One row of Tables 3/4/5 for one query.

    ``results_preserved`` is the paper's guarantee (Theorem 2): every
    full-database match also appears on the pruned database.
    ``results_equal`` additionally holds for monotone queries and for
    well-designed OPTIONAL patterns; *non*-well-designed patterns may
    legitimately gain extra (overapproximated) solutions on the pruned
    store — the paper frames the result as "an overapproximation of
    the actual SPARQL query results for further inspection" (Sect. 1)
    and ties exactness to well-designedness via weak monotonicity
    (Sect. 4.5).
    """

    name: str
    result_count: int = 0
    required_triples: int = 0
    triples_total: int = 0
    triples_after_pruning: int = 0
    t_simulation: float = 0.0
    t_db_full: float = 0.0
    t_db_pruned: float = 0.0
    rounds: int = 0
    results_equal: bool = True
    results_preserved: bool = True
    well_designed: bool = True

    @property
    def t_pruned_plus_sim(self) -> float:
        """The paper's 't_DB pruned + t_SPARQLSIM' column."""
        return self.t_db_pruned + self.t_simulation

    @property
    def prune_ratio(self) -> float:
        if self.triples_total == 0:
            return 0.0
        return 1.0 - self.triples_after_pruning / self.triples_total


class PruningPipeline:
    """Dual-simulation pruning in front of a join-based engine.

    The pipeline runs over any
    :class:`~repro.api.backend.GraphBackend` — the solver/pruning
    stages read adjacency from ``backend.graph``, the join engine
    reads indexes from ``backend.triple_store()`` — so memory- and
    snapshot-backed sessions share one code path.  The legacy
    ``PruningPipeline(graph_db)`` form still works (it wraps the
    database into an in-memory backend); sessions should construct a
    :class:`repro.Database` instead.
    """

    def __init__(
        self,
        db: Optional[GraphDatabase] = None,
        profile: str = "rdfox-like",
        solver_options: Optional[SolverOptions] = None,
        store: Optional[TripleStore] = None,
        *,
        backend=None,
    ):
        if backend is None:
            from repro.api.backend import InMemoryBackend

            if store is not None:
                deprecated_call(
                    "PruningPipeline(store=...)",
                    "passing store= to PruningPipeline is deprecated; "
                    "construct a repro.Database (or pass backend=) "
                    "instead",
                )
            if db is None and store is None:
                raise ValueError(
                    "PruningPipeline needs a database or a backend"
                )
            backend = InMemoryBackend(db, store=store)
        elif db is not None or store is not None:
            raise ValueError(
                "pass either backend= or db/store, not both"
            )
        self.backend = backend
        self.db = backend.graph
        self.profile = profile
        self.solver_options = solver_options or SolverOptions()
        self.store = backend.triple_store()
        self.engine = QueryEngine(self.store, profile)
        # The paper's tool keeps the adjacency matrices in memory as
        # part of the database (Sect. 3.3); build them at load time so
        # per-query timings do not pay one-off construction.  For a
        # TieredGraphView this is a no-op handle: cold labels stay
        # gap-encoded until a query touches them.
        self.db.matrices()

    @classmethod
    def from_snapshot(
        cls,
        path,
        profile: str = "rdfox-like",
        solver_options: Optional[SolverOptions] = None,
    ) -> "PruningPipeline":
        """Deprecated: use :meth:`repro.Database.open` instead.

        The solver side runs over a
        :class:`~repro.storage.TieredGraphView` (hot labels resident,
        cold labels promoted on first touch); the join engine gets a
        :class:`TripleStore` filled straight from the snapshot's
        dictionary-encoded blocks.
        """
        deprecated_call(
            "PruningPipeline.from_snapshot",
            "PruningPipeline.from_snapshot() is deprecated; use "
            "repro.Database.open(path) for snapshot sessions",
        )
        from repro.api.backend import SnapshotBackend

        return cls(
            profile=profile, solver_options=solver_options,
            backend=SnapshotBackend(path),
        )

    # -- stages -----------------------------------------------------------

    def parse(self, query: SelectQuery | str) -> SelectQuery:
        if isinstance(query, str):
            with current_tracer().span("parse", n_chars=len(query)):
                return parse_query(query)
        return query

    def prune(
        self,
        query: SelectQuery | str,
        limits: Optional[ExecutionLimits] = None,
        resume: Optional[PruneSuspension] = None,
        incremental=None,
    ) -> Union[PruneOutcome, PruneSuspension]:
        """Stage 1-3: compile, solve, prune.  ``t_simulation`` covers
        the whole dual simulation processing (as in the paper).

        With ``limits`` the stage is preemptable: on quantum expiry a
        :class:`PruneSuspension` comes back instead of an outcome;
        pass it as ``resume`` to continue.  The stitched run's rows,
        counters, and ``t_simulation`` accounting match an
        uninterrupted one.  A blown deadline raises
        :class:`~repro.errors.DeadlineExceededError`.

        ``incremental`` (an
        :class:`~repro.core.incremental.IncrementalSolver`) swaps the
        per-branch solve for cached-fixpoint maintenance; it only
        engages on unbounded, non-resumed runs — a branch resumed from
        a real checkpoint must continue that exact trajectory.
        """
        query = self.parse(query)
        tracer = current_tracer()
        start = time.perf_counter()
        compiled = compile_query(query)
        results: List[SolverResult] = []
        t_prior = 0.0
        start_branch = 0
        branch_resume: Optional[SolverCheckpoint] = None
        if resume is not None:
            t_prior = resume.t_simulation
            start_branch = resume.branch_index
            # Rehydrate completed branches: resuming an empty-worklist
            # checkpoint restores rows and counters without solving.
            for state in resume.branch_states[:start_branch]:
                results.append(
                    solve(
                        compiled[len(results)].soi, self.db,
                        self.solver_options, resume=state,
                    )
                )
            if len(resume.branch_states) > start_branch:
                branch_resume = resume.branch_states[start_branch]
        for number in range(start_branch, len(compiled)):
            branch_limits = _remaining_limits(
                limits, (time.perf_counter() - start) * 1000.0
            )
            with tracer.span("prune", branch=number) as span:
                if (
                    incremental is not None
                    and branch_resume is None
                    and branch_limits is None
                ):
                    result = incremental.solve_branch(
                        number, compiled[number].soi, self.db,
                        self.solver_options,
                    )
                else:
                    result = solve(
                        compiled[number].soi, self.db,
                        self.solver_options,
                        limits=branch_limits, resume=branch_resume,
                    )
                span.set_attributes(
                    rounds=result.report.rounds,
                    complete=result.complete,
                )
            branch_resume = None
            if not result.complete:
                ordering = self.solver_options.ordering
                states = [
                    _frozen_branch_state(done, ordering)
                    for done in results
                ]
                states.append(result.checkpoint)
                return PruneSuspension(
                    query=query,
                    branch_index=number,
                    branch_states=states,
                    t_simulation=(
                        t_prior + time.perf_counter() - start
                    ),
                )
            results.append(result)
        with tracer.span("extract") as span:
            prune_result = prune(self.db, results)
            t_simulation = t_prior + time.perf_counter() - start
            pruned_store = prune_result.to_store()
            span.set_attribute(
                "triples_after", prune_result.n_triples_after
            )
        return PruneOutcome(
            query=query,
            compiled=compiled,
            solver_results=results,
            prune_result=prune_result,
            pruned_store=pruned_store,
            t_simulation=t_simulation,
        )

    def evaluate_full(self, query: SelectQuery | str) -> QueryResult:
        return self.engine.execute(self.parse(query))

    def evaluate_pruned(
        self,
        query: SelectQuery | str,
        outcome: Optional[PruneOutcome] = None,
    ) -> Tuple[QueryResult, PruneOutcome]:
        query = self.parse(query)
        if outcome is None:
            outcome = self.prune(query)
        pruned_engine = QueryEngine(outcome.pruned_store, self.profile)
        return pruned_engine.execute(query), outcome

    def ask(
        self, query, limits: Optional[ExecutionLimits] = None
    ) -> bool:
        """ASK with the dual simulation fast path (Sect. 5: 'for
        queries with 0 triples left, there is no need for any further
        query evaluation').  ``limits`` may carry a deadline; ASK has
        no continuation surface, so a quantum is ignored here."""
        if isinstance(query, str):
            from repro.sparql.parser import parse_query as _parse
            query = _parse(query)
        pattern = query.pattern
        select = SelectQuery(None, pattern)
        if limits is not None and (
            limits.quantum_ms is not None
            or limits.preempt_after is not None
        ):
            limits = ExecutionLimits(
                deadline_ms=limits.deadline_ms, clock=limits.clock
            )
        outcome = self.prune(select, limits=limits)
        if outcome.triples_after_pruning == 0:
            return False
        pruned_engine = QueryEngine(outcome.pruned_store, self.profile)
        return pruned_engine.ask(select)

    # -- full experiment -------------------------------------------------------

    def run(self, query: SelectQuery | str, name: str = "query") -> PipelineReport:
        """Run the complete experiment for one query."""
        from repro.sparql.ast import is_well_designed

        query = self.parse(query)
        full = self.evaluate_full(query)
        outcome = self.prune(query)
        pruned, _ = self.evaluate_pruned(query, outcome)
        full_set = full.as_set()
        pruned_set = pruned.as_set()
        return PipelineReport(
            name=name,
            result_count=len(full),
            required_triples=len(full.required_triples()),
            triples_total=self.store.n_triples,
            triples_after_pruning=outcome.triples_after_pruning,
            t_simulation=outcome.t_simulation,
            t_db_full=full.elapsed,
            t_db_pruned=pruned.elapsed,
            rounds=outcome.total_rounds,
            results_equal=full_set == pruned_set,
            results_preserved=full_set <= pruned_set,
            well_designed=is_well_designed(query.pattern),
        )
