"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""


class ReproError(Exception):
    """Base class of all errors raised by this library."""


class GraphError(ReproError):
    """Malformed graph or graph-database input."""


class DimensionMismatchError(ReproError):
    """Bit-vector/bit-matrix operands of incompatible width."""


class TermError(ReproError):
    """Malformed RDF term (IRI, literal, variable)."""


class ParseError(ReproError):
    """Syntax error while parsing N-Triples or SPARQL text."""

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class QueryError(ReproError):
    """Semantically invalid query (e.g. unknown variable projected)."""


class StoreError(ReproError):
    """Triple-store level failure (unknown term, bad index access)."""


class SnapshotError(StoreError):
    """Malformed, truncated, or incompatible on-disk snapshot."""


class SolverError(ReproError):
    """SOI construction or fixpoint-solver failure."""


class WorkloadError(ReproError):
    """Invalid workload-generator parameters."""
