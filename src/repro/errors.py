"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""


class ReproError(Exception):
    """Base class of all errors raised by this library."""


class GraphError(ReproError):
    """Malformed graph or graph-database input."""


class DimensionMismatchError(ReproError):
    """Bit-vector/bit-matrix operands of incompatible width."""


class TermError(ReproError):
    """Malformed RDF term (IRI, literal, variable)."""


class ParseError(ReproError):
    """Syntax error while parsing N-Triples or SPARQL text."""

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class QueryError(ReproError):
    """Semantically invalid query (e.g. unknown variable projected)."""


class StoreError(ReproError):
    """Triple-store level failure (unknown term, bad index access)."""


class SnapshotError(StoreError):
    """Malformed, truncated, or incompatible on-disk snapshot."""


class SnapshotCorruptError(SnapshotError):
    """A snapshot section failed its CRC32C integrity check.

    ``section`` names the failing section (``"header"``,
    ``"nodes dictionary"``, ``"block table"``, a payload's
    ``"payload label/direction"``, or ``"checksum table"``).
    """

    def __init__(self, message, section=None):
        super().__init__(message)
        self.section = section
        # Constructing this error *is* the corruption-detection event:
        # every CRC-mismatch path (open-time sections, lazy payloads,
        # verify sweeps) funnels through here, so observability hooks
        # live at this single choke point.  Imports are deferred to
        # keep the errors module dependency-free at import time.
        from repro.obs.logs import get_logger
        from repro.obs.metrics import registry
        from repro.obs.trace import current_tracer

        registry().counter("snapshot_corruptions_total").inc()
        tracer = current_tracer()
        if tracer.enabled:
            tracer.event(
                "corruption", section=section or "", message=message
            )
        get_logger("storage.integrity").error(
            "snapshot corruption detected (%s): %s",
            section or "unknown section", message,
        )


class SolverError(ReproError):
    """SOI construction or fixpoint-solver failure."""


class DeadlineExceededError(ReproError):
    """A query's ``deadline_ms`` elapsed before execution finished.

    Unlike quantum expiry (which suspends into a continuation token),
    blowing the deadline aborts the operation — there is nothing to
    resume.
    """


class ContinuationError(ReproError):
    """A continuation token could not be resumed.

    Raised for structurally corrupt tokens (truncation, bad CRC,
    unknown version) and for stale tokens whose fingerprint no longer
    matches the session (different query, snapshot, or solver
    configuration).  ``reason`` distinguishes the two — ``"corrupt"``
    (the default: the token is not a byte-exact token this build
    wrote) vs ``"stale"`` (structurally valid but bound to a
    different session) — so protocol boundaries such as the HTTP
    server can map them to distinct status codes."""

    def __init__(self, message, reason: str = "corrupt"):
        super().__init__(message)
        self.reason = reason


class WorkloadError(ReproError):
    """Invalid workload-generator parameters."""


class UnsupportedOperationError(ReproError):
    """The backend cannot perform the requested operation.

    Raised when an operation needs a capability the session's backend
    does not advertise (see
    :meth:`repro.api.backend.GraphBackend.capabilities`) — most
    prominently writes (``Database.add``/``retract``/``compact``) on a
    read-only backend, and in-process operations (``simulate``,
    ``explain``, ``benchmark``) on a remote session.  Protocol
    boundaries map it to HTTP 405."""
