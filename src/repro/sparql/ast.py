"""Abstract syntax of the SPARQL fragment handled by the paper.

The paper's query language ``S`` (Sect. 4.3) comprises union-free
queries built from BGPs with AND and OPTIONAL; we additionally carry
UNION (removed by normalization, Prop. 3) and simple FILTERs (ignored
by the pruning compiler — dropping a filter only ever *enlarges* the
overapproximation, so soundness is preserved; the engine applies
them).

Pattern terms are either :class:`~repro.rdf.terms.Variable` or
constants.  Constants are opaque node names compared by equality with
database nodes, so plain strings, :class:`~repro.rdf.terms.Iri` and
:class:`~repro.graph.database.Literal` all work.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, Optional, Sequence, Tuple, Union

from repro.errors import QueryError
from repro.rdf.terms import Variable


class TriplePattern:
    """A triple pattern (s, p, o); s/o may be variables or constants,
    p may be a variable or a label constant."""

    __slots__ = ("subject", "predicate", "object")

    def __init__(self, subject, predicate, obj):
        self.subject = subject
        self.predicate = predicate
        self.object = obj

    def variables(self) -> FrozenSet[Variable]:
        out = set()
        for term in (self.subject, self.predicate, self.object):
            if isinstance(term, Variable):
                out.add(term)
        return frozenset(out)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TriplePattern)
            and self.subject == other.subject
            and self.predicate == other.predicate
            and self.object == other.object
        )

    def __hash__(self) -> int:
        return hash((self.subject, self.predicate, self.object))

    def __repr__(self) -> str:
        return f"TriplePattern({self.subject!r}, {self.predicate!r}, {self.object!r})"


# -- filter expressions ---------------------------------------------------


class Expression:
    """Base class of filter expressions."""

    def variables(self) -> FrozenSet[Variable]:
        raise NotImplementedError


class Comparison(Expression):
    """Binary comparison between variables/constants."""

    OPS = ("=", "!=", "<", "<=", ">", ">=")

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left, right):
        if op not in self.OPS:
            raise QueryError(f"unknown comparison operator: {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def variables(self) -> FrozenSet[Variable]:
        out = set()
        if isinstance(self.left, Variable):
            out.add(self.left)
        if isinstance(self.right, Variable):
            out.add(self.right)
        return frozenset(out)

    def __repr__(self) -> str:
        return f"Comparison({self.left!r} {self.op} {self.right!r})"


class BooleanOp(Expression):
    """'&&' / '||' combination of expressions."""

    __slots__ = ("op", "operands")

    def __init__(self, op: str, operands: Sequence[Expression]):
        if op not in ("&&", "||"):
            raise QueryError(f"unknown boolean operator: {op!r}")
        self.op = op
        self.operands = tuple(operands)

    def variables(self) -> FrozenSet[Variable]:
        out: set = set()
        for operand in self.operands:
            out |= operand.variables()
        return frozenset(out)

    def __repr__(self) -> str:
        return f"BooleanOp({self.op!r}, {list(self.operands)!r})"


class Negation(Expression):
    __slots__ = ("operand",)

    def __init__(self, operand: Expression):
        self.operand = operand

    def variables(self) -> FrozenSet[Variable]:
        return self.operand.variables()

    def __repr__(self) -> str:
        return f"Negation({self.operand!r})"


class Bound(Expression):
    """``BOUND(?v)`` — true when the solution binds ``?v``."""

    __slots__ = ("variable",)

    def __init__(self, variable: Variable):
        self.variable = variable

    def variables(self) -> FrozenSet[Variable]:
        return frozenset({self.variable})

    def __repr__(self) -> str:
        return f"Bound({self.variable!r})"


# -- graph patterns --------------------------------------------------------


class GraphPattern:
    """Base class of query graph patterns."""

    def variables(self) -> FrozenSet[Variable]:
        raise NotImplementedError

    def mandatory_variables(self) -> FrozenSet[Variable]:
        """The paper's ``mand`` function (Sect. 4.3)."""
        raise NotImplementedError


class BGP(GraphPattern):
    """A basic graph pattern: a set of triple patterns."""

    __slots__ = ("triples",)

    def __init__(self, triples: Sequence[TriplePattern]):
        self.triples = tuple(triples)

    def variables(self) -> FrozenSet[Variable]:
        out: set = set()
        for t in self.triples:
            out |= t.variables()
        return frozenset(out)

    def mandatory_variables(self) -> FrozenSet[Variable]:
        return self.variables()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BGP) and set(self.triples) == set(other.triples)

    def __hash__(self) -> int:
        return hash(frozenset(self.triples))

    def __repr__(self) -> str:
        return f"BGP({list(self.triples)!r})"


class Join(GraphPattern):
    """``Q1 AND Q2`` — SPARQL inner join."""

    __slots__ = ("left", "right")

    def __init__(self, left: GraphPattern, right: GraphPattern):
        self.left = left
        self.right = right

    def variables(self) -> FrozenSet[Variable]:
        return self.left.variables() | self.right.variables()

    def mandatory_variables(self) -> FrozenSet[Variable]:
        return (
            self.left.mandatory_variables() | self.right.mandatory_variables()
        )

    def __repr__(self) -> str:
        return f"Join({self.left!r}, {self.right!r})"


class LeftJoin(GraphPattern):
    """``Q1 OPTIONAL Q2`` — SPARQL left-outer join."""

    __slots__ = ("left", "right")

    def __init__(self, left: GraphPattern, right: GraphPattern):
        self.left = left
        self.right = right

    def variables(self) -> FrozenSet[Variable]:
        return self.left.variables() | self.right.variables()

    def mandatory_variables(self) -> FrozenSet[Variable]:
        return self.left.mandatory_variables()

    def __repr__(self) -> str:
        return f"LeftJoin({self.left!r}, {self.right!r})"


class Union(GraphPattern):
    """``Q1 UNION Q2``."""

    __slots__ = ("left", "right")

    def __init__(self, left: GraphPattern, right: GraphPattern):
        self.left = left
        self.right = right

    def variables(self) -> FrozenSet[Variable]:
        return self.left.variables() | self.right.variables()

    def mandatory_variables(self) -> FrozenSet[Variable]:
        # Only variables bound in every branch are certain; for the
        # pruning machinery UNION is normalized away first, so this is
        # used for analysis/validation only.
        return (
            self.left.mandatory_variables() & self.right.mandatory_variables()
        )

    def __repr__(self) -> str:
        return f"Union({self.left!r}, {self.right!r})"


class Filter(GraphPattern):
    """``FILTER(expr)`` applied to a pattern."""

    __slots__ = ("expression", "pattern")

    def __init__(self, expression: Expression, pattern: GraphPattern):
        self.expression = expression
        self.pattern = pattern

    def variables(self) -> FrozenSet[Variable]:
        return self.pattern.variables()

    def mandatory_variables(self) -> FrozenSet[Variable]:
        return self.pattern.mandatory_variables()

    def __repr__(self) -> str:
        return f"Filter({self.expression!r}, {self.pattern!r})"


class SelectQuery:
    """A SELECT query: projection + solution modifiers over a pattern.

    ``order_by`` is a sequence of ``(variable, ascending)`` pairs;
    ``limit``/``offset`` slice the (ordered) solution sequence.
    """

    __slots__ = (
        "projection", "pattern", "distinct", "order_by", "limit", "offset",
    )

    def __init__(
        self,
        projection: Optional[Sequence[Variable]],
        pattern: GraphPattern,
        distinct: bool = False,
        order_by: Sequence[Tuple[Variable, bool]] = (),
        limit: Optional[int] = None,
        offset: int = 0,
    ):
        known = pattern.variables()
        if projection is not None:
            for var in projection:
                if var not in known:
                    raise QueryError(
                        f"projected variable {var} does not occur in the pattern"
                    )
        for var, _ascending in order_by:
            if var not in known:
                raise QueryError(
                    f"ORDER BY variable {var} does not occur in the pattern"
                )
        if limit is not None and limit < 0:
            raise QueryError("LIMIT must be non-negative")
        if offset < 0:
            raise QueryError("OFFSET must be non-negative")
        self.projection = tuple(projection) if projection is not None else None
        self.pattern = pattern
        self.distinct = distinct
        self.order_by = tuple(order_by)
        self.limit = limit
        self.offset = offset

    def variables(self) -> FrozenSet[Variable]:
        return self.pattern.variables()

    def __repr__(self) -> str:
        proj = "*" if self.projection is None else list(self.projection)
        return f"SelectQuery({proj}, {self.pattern!r})"


class AskQuery:
    """An ASK query: does the pattern have at least one solution?"""

    __slots__ = ("pattern",)

    def __init__(self, pattern: GraphPattern):
        self.pattern = pattern

    def variables(self) -> FrozenSet[Variable]:
        return self.pattern.variables()

    def __repr__(self) -> str:
        return f"AskQuery({self.pattern!r})"


def iter_triple_patterns(pattern: GraphPattern) -> Iterator[TriplePattern]:
    """All triple patterns anywhere in a graph pattern."""
    if isinstance(pattern, BGP):
        yield from pattern.triples
    elif isinstance(pattern, (Join, LeftJoin, Union)):
        yield from iter_triple_patterns(pattern.left)
        yield from iter_triple_patterns(pattern.right)
    elif isinstance(pattern, Filter):
        yield from iter_triple_patterns(pattern.pattern)
    else:
        raise QueryError(f"unknown pattern node: {pattern!r}")


def is_well_designed(pattern: GraphPattern) -> bool:
    """Perez et al.'s well-designedness check (Sect. 4.5).

    A pattern is well-designed iff for every sub-pattern
    ``Q1 OPTIONAL Q2`` and every variable ``v`` of ``Q2`` occurring
    anywhere outside the optional sub-pattern, ``v`` also occurs in
    ``Q1``.
    """

    def occurs_outside(sub: GraphPattern, root: GraphPattern, var) -> bool:
        # Count occurrences of var in root that are not inside sub.
        if root is sub:
            return False
        if isinstance(root, BGP):
            return var in root.variables()
        if isinstance(root, Filter):
            return occurs_outside(sub, root.pattern, var) or (
                var in root.expression.variables()
            )
        if isinstance(root, (Join, LeftJoin, Union)):
            return occurs_outside(sub, root.left, var) or occurs_outside(
                sub, root.right, var
            )
        raise QueryError(f"unknown pattern node: {root!r}")

    def walk(node: GraphPattern) -> Iterator[LeftJoin]:
        if isinstance(node, LeftJoin):
            yield node
        if isinstance(node, (Join, LeftJoin, Union)):
            yield from walk(node.left)
            yield from walk(node.right)
        elif isinstance(node, Filter):
            yield from walk(node.pattern)

    for optional in walk(pattern):
        for var in optional.right.variables():
            if var in optional.left.variables():
                continue
            if occurs_outside(optional, pattern, var):
                return False
    return True
