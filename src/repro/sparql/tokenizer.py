"""Tokenizer for the SPARQL subset.

Produces a flat token stream consumed by the recursive-descent parser.
Token kinds:

* ``KEYWORD``  — SELECT, DISTINCT, WHERE, OPTIONAL, UNION, FILTER,
  PREFIX, BOUND, A (the ``rdf:type`` shorthand)
* ``VAR``      — ``?name``
* ``IRI``      — ``<...>``
* ``PNAME``    — ``prefix:local`` or ``:local``
* ``STRING``   — double-quoted with escapes
* ``NUMBER``   — integer or decimal
* ``PUNCT``    — ``{ } ( ) . ; , * = != <= >= < > && || !``
* ``EOF``
"""

from __future__ import annotations

from typing import List, NamedTuple

from repro.errors import ParseError

KEYWORDS = {
    "SELECT",
    "ASK",
    "DISTINCT",
    "WHERE",
    "OPTIONAL",
    "UNION",
    "FILTER",
    "PREFIX",
    "BOUND",
    "ORDER",
    "BY",
    "ASC",
    "DESC",
    "LIMIT",
    "OFFSET",
    "A",
}

_PUNCT_2 = ("!=", "<=", ">=", "&&", "||")
_PUNCT_1 = "{}().;,*=<>!"


class Token(NamedTuple):
    kind: str
    value: str
    line: int
    column: int


def tokenize(text: str) -> List[Token]:
    """Tokenize SPARQL text; raises :class:`ParseError` on bad input."""
    tokens: List[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(text)

    def error(message: str) -> ParseError:
        return ParseError(message, line=line, column=col)

    while i < n:
        char = text[i]
        if char == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if char in " \t\r":
            i += 1
            col += 1
            continue
        if char == "#":  # comment to end of line
            while i < n and text[i] != "\n":
                i += 1
            continue
        start_line, start_col = line, col

        if char == "?" or char == "$":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            if j == i + 1:
                raise error("empty variable name")
            tokens.append(Token("VAR", text[i + 1 : j], start_line, start_col))
            col += j - i
            i = j
            continue

        if char == "<":
            # Either an IRI or a comparison; IRIs never contain spaces
            # and must close on the same line before any whitespace.
            j = text.find(">", i + 1)
            segment = text[i + 1 : j] if j > 0 else ""
            if j > 0 and "\n" not in segment and " " not in segment and (
                j > i + 1
            ):
                # Treat "<=" as comparison, "<iri>" as IRI: an IRI body
                # never starts with "=".
                if not segment.startswith("="):
                    tokens.append(Token("IRI", segment, start_line, start_col))
                    col += j - i + 1
                    i = j + 1
                    continue
            two = text[i : i + 2]
            if two == "<=":
                tokens.append(Token("PUNCT", "<=", start_line, start_col))
                i += 2
                col += 2
            else:
                tokens.append(Token("PUNCT", "<", start_line, start_col))
                i += 1
                col += 1
            continue

        if char == '"':
            j = i + 1
            out = []
            while j < n:
                c = text[j]
                if c == "\\":
                    if j + 1 >= n:
                        raise error("dangling escape in string")
                    esc = text[j + 1]
                    mapped = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\"}.get(esc)
                    if mapped is None:
                        raise error(f"unknown escape: \\{esc}")
                    out.append(mapped)
                    j += 2
                elif c == '"':
                    break
                elif c == "\n":
                    raise error("newline in string literal")
                else:
                    out.append(c)
                    j += 1
            if j >= n:
                raise error("unterminated string literal")
            tokens.append(Token("STRING", "".join(out), start_line, start_col))
            col += j - i + 1
            i = j + 1
            continue

        if char.isdigit() or (
            char == "-" and i + 1 < n and text[i + 1].isdigit()
        ):
            j = i + 1
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A trailing "." is the triple terminator, not a decimal
                    # point ("5." means NUMBER 5 then PUNCT ".").
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token("NUMBER", text[i:j], start_line, start_col))
            col += j - i
            i = j
            continue

        two = text[i : i + 2]
        if two in _PUNCT_2:
            tokens.append(Token("PUNCT", two, start_line, start_col))
            i += 2
            col += 2
            continue
        if char in _PUNCT_1:
            tokens.append(Token("PUNCT", char, start_line, start_col))
            i += 1
            col += 1
            continue

        if char.isalpha() or char == "_" or char == ":":
            j = i
            while j < n and (text[j].isalnum() or text[j] in "_:.-"):
                j += 1
            # Do not swallow a trailing "." (triple terminator).
            while j > i and text[j - 1] == ".":
                j -= 1
            word = text[i:j]
            if ":" in word:
                tokens.append(Token("PNAME", word, start_line, start_col))
            elif word.upper() in KEYWORDS:
                tokens.append(Token("KEYWORD", word.upper(), start_line, start_col))
            else:
                # Bare word: treated as a plain-name constant/label.
                tokens.append(Token("NAME", word, start_line, start_col))
            col += j - i
            i = j
            continue

        raise error(f"unexpected character: {char!r}")

    tokens.append(Token("EOF", "", line, col))
    return tokens
