"""Recursive-descent parser for the SPARQL subset.

Grammar (whitespace-insensitive)::

    Query        := Prologue 'SELECT' 'DISTINCT'? ('*' | Var+)
                    'WHERE'? Group
    Prologue     := ('PREFIX' PNAME ':'? IRI)*
    Group        := '{' GroupBody '}'
    GroupBody    := (Triples | 'OPTIONAL' Group | Group ('UNION' Group)*
                     | 'FILTER' '(' Expr ')') ('.'? ...)*
    Triples      := Term Verb Object (',' Object)* (';' Verb Object...)*

Group semantics follow the SPARQL algebra translation: elements of a
group are folded left-to-right with Join; an OPTIONAL element folds
with LeftJoin; FILTERs collected in a group wrap the whole group.

Constant handling: IRIs and prefixed names become :class:`Iri` terms
when a prologue/prefix map is in play, otherwise bare NAME tokens
become plain-string constants (matching the paper's "intuitive names"
presentation, e.g. ``?director directed ?movie``).  The keyword ``a``
in verb position is the plain label ``"a"`` by default and the
``rdf:type`` IRI when ``a_is_rdf_type=True``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ParseError
from repro.rdf.terms import Iri, RdfLiteral, Variable
from repro.sparql.ast import (
    AskQuery,
    BGP,
    BooleanOp,
    Bound,
    Comparison,
    Expression,
    Filter,
    GraphPattern,
    Join,
    LeftJoin,
    Negation,
    SelectQuery,
    TriplePattern,
    Union,
)
from repro.sparql.tokenizer import Token, tokenize

RDF_TYPE = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"


class _Parser:
    def __init__(self, tokens: List[Token], a_is_rdf_type: bool):
        self.tokens = tokens
        self.pos = 0
        self.prefixes: Dict[str, str] = {}
        self.a_is_rdf_type = a_is_rdf_type

    # -- token plumbing ---------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def error(self, message: str) -> ParseError:
        token = self.peek()
        return ParseError(
            f"{message} (found {token.kind} {token.value!r})",
            line=token.line,
            column=token.column,
        )

    def accept_punct(self, value: str) -> bool:
        token = self.peek()
        if token.kind == "PUNCT" and token.value == value:
            self.pos += 1
            return True
        return False

    def expect_punct(self, value: str) -> None:
        if not self.accept_punct(value):
            raise self.error(f"expected {value!r}")

    def accept_keyword(self, value: str) -> bool:
        token = self.peek()
        if token.kind == "KEYWORD" and token.value == value:
            self.pos += 1
            return True
        return False

    def expect_keyword(self, value: str) -> None:
        if not self.accept_keyword(value):
            raise self.error(f"expected keyword {value}")

    # -- grammar -----------------------------------------------------------

    def parse_query(self):
        self.parse_prologue()
        if self.accept_keyword("ASK"):
            self.accept_keyword("WHERE")
            pattern = self.parse_group()
            if self.peek().kind != "EOF":
                raise self.error("trailing content after query")
            return AskQuery(pattern)
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        projection: Optional[List[Variable]]
        if self.accept_punct("*"):
            projection = None
        else:
            projection = []
            while self.peek().kind == "VAR":
                projection.append(Variable(self.next().value))
            if not projection:
                raise self.error("expected '*' or at least one variable")
        self.accept_keyword("WHERE")
        pattern = self.parse_group()
        order_by = self.parse_order_by()
        limit, offset = self.parse_limit_offset()
        if self.peek().kind != "EOF":
            raise self.error("trailing content after query")
        return SelectQuery(
            projection, pattern, distinct,
            order_by=order_by, limit=limit, offset=offset,
        )

    def parse_order_by(self):
        conditions: List = []
        if not self.accept_keyword("ORDER"):
            return conditions
        self.expect_keyword("BY")
        while True:
            token = self.peek()
            if token.kind == "VAR":
                self.next()
                conditions.append((Variable(token.value), True))
            elif token.kind == "KEYWORD" and token.value in ("ASC", "DESC"):
                self.next()
                ascending = token.value == "ASC"
                self.expect_punct("(")
                var_token = self.next()
                if var_token.kind != "VAR":
                    raise self.error("ORDER BY expects a variable")
                self.expect_punct(")")
                conditions.append((Variable(var_token.value), ascending))
            else:
                break
        if not conditions:
            raise self.error("ORDER BY needs at least one condition")
        return conditions

    def parse_limit_offset(self):
        limit: Optional[int] = None
        offset = 0
        # LIMIT and OFFSET may appear in either order.
        for _ in range(2):
            if self.accept_keyword("LIMIT"):
                token = self.next()
                if token.kind != "NUMBER" or "." in token.value:
                    raise self.error("LIMIT expects an integer")
                limit = int(token.value)
            elif self.accept_keyword("OFFSET"):
                token = self.next()
                if token.kind != "NUMBER" or "." in token.value:
                    raise self.error("OFFSET expects an integer")
                offset = int(token.value)
        return limit, offset

    def parse_prologue(self) -> None:
        while self.accept_keyword("PREFIX"):
            token = self.next()
            if token.kind != "PNAME" or not token.value.endswith(":"):
                raise self.error("expected prefix name ending in ':'")
            prefix = token.value[:-1]
            iri_token = self.next()
            if iri_token.kind != "IRI":
                raise self.error("expected IRI after prefix name")
            self.prefixes[prefix] = iri_token.value

    def parse_group(self) -> GraphPattern:
        self.expect_punct("{")
        elements: List[GraphPattern] = []
        optionals: List[int] = []  # indices of elements joined as OPTIONAL
        filters: List[Expression] = []
        while not self.accept_punct("}"):
            token = self.peek()
            if token.kind == "KEYWORD" and token.value == "OPTIONAL":
                self.next()
                inner = self.parse_group()
                optionals.append(len(elements))
                elements.append(inner)
            elif token.kind == "KEYWORD" and token.value == "FILTER":
                self.next()
                self.expect_punct("(")
                filters.append(self.parse_expression())
                self.expect_punct(")")
            elif token.kind == "PUNCT" and token.value == "{":
                sub = self.parse_group()
                while self.accept_keyword("UNION"):
                    sub = Union(sub, self.parse_group())
                elements.append(sub)
            elif token.kind == "EOF":
                raise self.error("unterminated group (missing '}')")
            else:
                elements.append(self.parse_triples_block())
            self.accept_punct(".")

        pattern = self.fold_group(elements, optionals)
        for expression in filters:
            pattern = Filter(expression, pattern)
        return pattern

    def fold_group(
        self, elements: List[GraphPattern], optionals: List[int]
    ) -> GraphPattern:
        optional_set = set(optionals)
        pattern: Optional[GraphPattern] = None
        for index, element in enumerate(elements):
            if pattern is None:
                if index in optional_set:
                    # OPTIONAL as the first element joins with the empty BGP.
                    pattern = LeftJoin(BGP(()), element)
                else:
                    pattern = element
            elif index in optional_set:
                pattern = LeftJoin(pattern, element)
            else:
                pattern = Join(pattern, element)
        return pattern if pattern is not None else BGP(())

    def parse_triples_block(self) -> BGP:
        triples: List[TriplePattern] = []
        while True:
            subject = self.parse_term(position="subject")
            self.parse_property_list(subject, triples)
            # A '.' may separate further same-block triples.
            saved = self.pos
            if self.accept_punct("."):
                token = self.peek()
                if token.kind in ("VAR", "IRI", "PNAME", "NAME", "NUMBER", "STRING"):
                    continue
                self.pos = saved  # let the group loop consume the dot
            break
        return BGP(triples)

    def parse_property_list(self, subject, triples: List[TriplePattern]) -> None:
        while True:
            predicate = self.parse_verb()
            while True:
                obj = self.parse_term(position="object")
                triples.append(TriplePattern(subject, predicate, obj))
                if not self.accept_punct(","):
                    break
            if not self.accept_punct(";"):
                break

    def parse_verb(self):
        token = self.peek()
        if token.kind == "KEYWORD" and token.value == "A":
            self.next()
            return Iri(RDF_TYPE) if self.a_is_rdf_type else "a"
        if token.kind == "VAR":
            self.next()
            return Variable(token.value)
        if token.kind == "IRI":
            self.next()
            return Iri(token.value)
        if token.kind == "PNAME":
            self.next()
            return self.expand_pname(token)
        if token.kind == "NAME":
            self.next()
            return token.value
        raise self.error("expected predicate")

    def parse_term(self, position: str):
        token = self.peek()
        if token.kind == "VAR":
            self.next()
            return Variable(token.value)
        if token.kind == "IRI":
            self.next()
            return Iri(token.value)
        if token.kind == "PNAME":
            self.next()
            return self.expand_pname(token)
        if token.kind == "NAME":
            self.next()
            return token.value
        if token.kind == "STRING":
            self.next()
            return RdfLiteral(token.value)
        if token.kind == "NUMBER":
            self.next()
            return self.number_literal(token.value)
        if token.kind == "KEYWORD" and token.value == "A" and position == "subject":
            # A bare 'a' in subject position is a plain name.
            self.next()
            return "a"
        raise self.error(f"expected {position} term")

    def number_literal(self, text: str) -> RdfLiteral:
        if "." in text:
            return RdfLiteral(text, "http://www.w3.org/2001/XMLSchema#decimal")
        return RdfLiteral.integer(int(text))

    def expand_pname(self, token: Token):
        prefix, _, local = token.value.partition(":")
        if prefix in self.prefixes:
            return Iri(self.prefixes[prefix] + local)
        if self.prefixes:
            raise ParseError(
                f"unknown prefix: {prefix!r}", line=token.line, column=token.column
            )
        # Without a prologue, prefixed names are opaque string constants
        # (matching the paper's ub:Publication style examples).
        return token.value

    # -- filter expressions ---------------------------------------------------

    def parse_expression(self) -> Expression:
        return self.parse_or()

    def parse_or(self) -> Expression:
        operands = [self.parse_and()]
        while self.accept_punct("||"):
            operands.append(self.parse_and())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("||", operands)

    def parse_and(self) -> Expression:
        operands = [self.parse_unary()]
        while self.accept_punct("&&"):
            operands.append(self.parse_unary())
        if len(operands) == 1:
            return operands[0]
        return BooleanOp("&&", operands)

    def parse_unary(self) -> Expression:
        if self.accept_punct("!"):
            return Negation(self.parse_unary())
        if self.accept_punct("("):
            inner = self.parse_expression()
            self.expect_punct(")")
            return inner
        if self.accept_keyword("BOUND"):
            self.expect_punct("(")
            token = self.next()
            if token.kind != "VAR":
                raise self.error("BOUND expects a variable")
            self.expect_punct(")")
            return Bound(Variable(token.value))
        return self.parse_comparison()

    def parse_comparison(self) -> Expression:
        left = self.parse_operand()
        token = self.peek()
        if token.kind == "PUNCT" and token.value in Comparison.OPS:
            self.next()
            right = self.parse_operand()
            return Comparison(token.value, left, right)
        raise self.error("expected comparison operator")

    def parse_operand(self):
        token = self.peek()
        if token.kind == "VAR":
            self.next()
            return Variable(token.value)
        if token.kind == "NUMBER":
            self.next()
            return self.number_literal(token.value)
        if token.kind == "STRING":
            self.next()
            return RdfLiteral(token.value)
        if token.kind == "IRI":
            self.next()
            return Iri(token.value)
        if token.kind == "PNAME":
            self.next()
            return self.expand_pname(token)
        if token.kind == "NAME":
            self.next()
            return token.value
        raise self.error("expected filter operand")


def parse_query(text: str, a_is_rdf_type: bool = False) -> SelectQuery:
    """Parse a SELECT query from SPARQL text."""
    return _Parser(tokenize(text), a_is_rdf_type).parse_query()


def parse_pattern(text: str, a_is_rdf_type: bool = False) -> GraphPattern:
    """Parse a group graph pattern ``{ ... }`` without a SELECT head."""
    parser = _Parser(tokenize(text), a_is_rdf_type)
    pattern = parser.parse_group()
    if parser.peek().kind != "EOF":
        raise parser.error("trailing content after pattern")
    return pattern
