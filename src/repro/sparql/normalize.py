"""UNION normal form (paper Prop. 3 / Perez et al. Prop. 3.8).

Every query is equivalent to a UNION of finitely many union-free
queries; AND, OPTIONAL and FILTER distribute over UNION.  The pruning
compiler (Sect. 4) operates on union-free queries, so this module
rewrites arbitrary patterns into a list of union-free branches.

Additionally small structural clean-ups used throughout:
* ``merge_bgps`` fuses Join-of-BGP chains into single BGPs (the SPARQL
  algebra treats triples of one group as one BGP);
* ``flatten`` removes empty-BGP Join units introduced by parsing.
"""

from __future__ import annotations

from typing import List

from repro.errors import QueryError
from repro.sparql.ast import (
    BGP,
    Filter,
    GraphPattern,
    Join,
    LeftJoin,
    Union,
)


def is_union_free(pattern: GraphPattern) -> bool:
    if isinstance(pattern, BGP):
        return True
    if isinstance(pattern, Union):
        return False
    if isinstance(pattern, (Join, LeftJoin)):
        return is_union_free(pattern.left) and is_union_free(pattern.right)
    if isinstance(pattern, Filter):
        return is_union_free(pattern.pattern)
    raise QueryError(f"unknown pattern node: {pattern!r}")


def to_union_free(pattern: GraphPattern) -> List[GraphPattern]:
    """The union-free branches whose UNION is equivalent to ``pattern``.

    Uses the distributivity equivalences of Perez et al.:
    ``(P1 UNION P2) AND P3     == (P1 AND P3) UNION (P2 AND P3)``
    ``(P1 UNION P2) OPT P3     == (P1 OPT P3) UNION (P2 OPT P3)``
    ``P1 OPT (P2 UNION P3)     == (P1 OPT P2) UNION (P1 OPT P3)``
    ``FILTER e (P1 UNION P2)   == (FILTER e P1) UNION (FILTER e P2)``
    """
    if isinstance(pattern, BGP):
        return [pattern]
    if isinstance(pattern, Union):
        return to_union_free(pattern.left) + to_union_free(pattern.right)
    if isinstance(pattern, Join):
        return [
            Join(left, right)
            for left in to_union_free(pattern.left)
            for right in to_union_free(pattern.right)
        ]
    if isinstance(pattern, LeftJoin):
        return [
            LeftJoin(left, right)
            for left in to_union_free(pattern.left)
            for right in to_union_free(pattern.right)
        ]
    if isinstance(pattern, Filter):
        return [
            Filter(pattern.expression, branch)
            for branch in to_union_free(pattern.pattern)
        ]
    raise QueryError(f"unknown pattern node: {pattern!r}")


def flatten(pattern: GraphPattern) -> GraphPattern:
    """Drop empty-BGP Join units; e.g. ``Join(BGP(()), P) -> P``."""
    if isinstance(pattern, BGP):
        return pattern
    if isinstance(pattern, Join):
        left = flatten(pattern.left)
        right = flatten(pattern.right)
        if isinstance(left, BGP) and not left.triples:
            return right
        if isinstance(right, BGP) and not right.triples:
            return left
        return Join(left, right)
    if isinstance(pattern, LeftJoin):
        left = flatten(pattern.left)
        right = flatten(pattern.right)
        if isinstance(right, BGP) and not right.triples:
            return left
        return LeftJoin(left, right)
    if isinstance(pattern, Union):
        return Union(flatten(pattern.left), flatten(pattern.right))
    if isinstance(pattern, Filter):
        return Filter(pattern.expression, flatten(pattern.pattern))
    raise QueryError(f"unknown pattern node: {pattern!r}")


def merge_bgps(pattern: GraphPattern) -> GraphPattern:
    """Fuse ``Join(BGP, BGP)`` chains into single BGPs.

    Sound for inner joins of BGPs (set-semantics join of two BGPs over
    shared variables equals the single merged BGP).
    """
    if isinstance(pattern, BGP):
        return pattern
    if isinstance(pattern, Join):
        left = merge_bgps(pattern.left)
        right = merge_bgps(pattern.right)
        if isinstance(left, BGP) and isinstance(right, BGP):
            return BGP(left.triples + right.triples)
        return Join(left, right)
    if isinstance(pattern, LeftJoin):
        return LeftJoin(merge_bgps(pattern.left), merge_bgps(pattern.right))
    if isinstance(pattern, Union):
        return Union(merge_bgps(pattern.left), merge_bgps(pattern.right))
    if isinstance(pattern, Filter):
        return Filter(pattern.expression, merge_bgps(pattern.pattern))
    raise QueryError(f"unknown pattern node: {pattern!r}")


def normalize(pattern: GraphPattern) -> List[GraphPattern]:
    """Full normalization pipeline: flatten, UNION-split, merge BGPs."""
    return [merge_bgps(branch) for branch in to_union_free(flatten(pattern))]


def strip_optional(pattern: GraphPattern) -> GraphPattern:
    """The mandatory core: drop all OPTIONAL parts (used for Table 2,
    where the Ma et al. baseline only accepts BGPs)."""
    if isinstance(pattern, BGP):
        return pattern
    if isinstance(pattern, Join):
        return Join(strip_optional(pattern.left), strip_optional(pattern.right))
    if isinstance(pattern, LeftJoin):
        return strip_optional(pattern.left)
    if isinstance(pattern, Union):
        return Union(strip_optional(pattern.left), strip_optional(pattern.right))
    if isinstance(pattern, Filter):
        return Filter(pattern.expression, strip_optional(pattern.pattern))
    raise QueryError(f"unknown pattern node: {pattern!r}")


def strip_filters(pattern: GraphPattern) -> GraphPattern:
    """Remove FILTER wrappers (the pruning compiler ignores them)."""
    if isinstance(pattern, BGP):
        return pattern
    if isinstance(pattern, Join):
        return Join(strip_filters(pattern.left), strip_filters(pattern.right))
    if isinstance(pattern, LeftJoin):
        return LeftJoin(strip_filters(pattern.left), strip_filters(pattern.right))
    if isinstance(pattern, Union):
        return Union(strip_filters(pattern.left), strip_filters(pattern.right))
    if isinstance(pattern, Filter):
        return strip_filters(pattern.pattern)
    raise QueryError(f"unknown pattern node: {pattern!r}")
