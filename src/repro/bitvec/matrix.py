"""Per-label adjacency bit-matrices (Sect. 3.2 of the paper).

For every edge label ``a`` the paper stores two adjacency matrices
``F_a`` (forward) and ``B_a`` (backward).  Dense |V|x|V| bit matrices
are wasteful for sparse graphs, so rows are materialized only for
nodes that actually have ``a``-labeled edges; absent rows are
all-zero.  This mirrors the gap-encoded storage the paper's prototype
uses.

Two physical layouts back the same logical matrix:

* a dict from node index to a :class:`Bitset` row — always present,
  cheap to build incrementally, and the layout the ``"reference"``
  kernel loops over;
* a **packed block** built by :meth:`AdjacencyMatrix.pack`: all
  non-empty rows stacked into one contiguous ``(n_rows, n_words)``
  ``uint64`` array plus an int index mapping node -> packed row.
  After packing, the dict rows are rebound to *views* into the block,
  so the two layouts share memory.  The summary vector (Eq. (13))
  falls out of the build as the bitset of indexed nodes.

The core operation is the bit-vector x bit-matrix product (Eq. (9)):

    ``(chi x_b F_a)(j) = 1`` iff exists ``i`` with ``chi(i) = 1`` and
    ``F_a(i, j) = 1``.

Two evaluation strategies are provided, matching Sect. 3.3:

* *row-wise*  — OR together the rows selected by set bits of ``chi``;
  cost is proportional to ``popcount(chi)``.
* *column-wise* — restricted to a target mask, test for each masked
  column ``j`` whether the *transposed* row (i.e. the row of the dual
  matrix) intersects ``chi``; cost is proportional to
  ``popcount(mask)``.

Both return identical results; the solver picks per evaluation.  On
the ``"packed"`` kernel (see :mod:`repro.bitvec.kernel`) the row-wise
product is a single ``np.bitwise_or.reduce`` over the selected row
block and the column-wise product is one vectorized masked
any-intersection test ``(block & vec.words).any(axis=1)`` — no
Python-level per-row/per-column loop, no allocation per set bit.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from repro.bitvec.bitset import Bitset, _WORD_BITS, _word_count
from repro.bitvec.kernel import REFERENCE, active_kernel
from repro.errors import DimensionMismatchError


class AdjacencyMatrix:
    """One direction (forward or backward) of a label's adjacency.

    ``rows[i]`` is the bitset of nodes reachable from ``i`` via one
    edge of this label and direction.  ``summary`` is the paper's
    ``f_a`` / ``b_a`` vector (Eq. (13)): bit ``i`` is set iff row ``i``
    is non-empty.
    """

    __slots__ = (
        "n", "rows", "summary", "n_edges",
        "_packed", "_row_nodes", "_row_index", "_word_idx", "_bit_shift",
    )

    def __init__(self, n: int):
        self.n = n
        self.rows: Dict[int, Bitset] = {}
        self.summary = Bitset.zeros(n)
        self.n_edges = 0
        self._packed: np.ndarray | None = None
        self._row_nodes: np.ndarray | None = None
        self._row_index: np.ndarray | None = None
        self._word_idx: np.ndarray | None = None
        self._bit_shift: np.ndarray | None = None

    def add(self, src: int, dst: int) -> None:
        """Record an edge src -> dst (in this direction's orientation)."""
        row = self.rows.get(src)
        if row is None:
            row = Bitset.zeros(self.n)
            self.rows[src] = row
            self.summary.add(src)
        if dst not in row:
            row.add(dst)
            self.n_edges += 1
            self._packed = None  # packed block is stale

    # -- packed layout -------------------------------------------------

    @property
    def is_packed(self) -> bool:
        return self._packed is not None

    def pack(self) -> None:
        """Build the contiguous row block and the node -> row index.

        Idempotent; called once per matrix from ``Graph.matrices()``
        and lazily from the products.  The dict rows are rebound to
        views into the block so both layouts share the same words.
        """
        if self._packed is not None:
            return
        n_words = _word_count(self.n)
        nodes = np.fromiter(sorted(self.rows), dtype=np.int64,
                            count=len(self.rows))
        packed = np.empty((nodes.size, n_words), dtype=np.uint64)
        for position, node in enumerate(nodes.tolist()):
            packed[position] = self.rows[node].words
            self.rows[node] = Bitset(self.n, packed[position])
        row_index = np.full(self.n, -1, dtype=np.int64)
        row_index[nodes] = np.arange(nodes.size, dtype=np.int64)
        self._row_nodes = nodes
        self._row_index = row_index
        # Per packed row: which word of a vector holds its node's bit
        # and how far to shift it down — the dense-vector row test.
        self._word_idx = nodes // _WORD_BITS
        self._bit_shift = (nodes % _WORD_BITS).astype(np.uint64)
        self._packed = packed

    def _selected_block(self, vec: Bitset) -> np.ndarray:
        """Packed rows whose node's bit is set in ``vec``.

        Sparse vectors go through their cached set-bit list (one
        gather + one filter, O(popcount)); dense vectors test each
        indexed node's bit directly (O(n_rows)) — whichever side is
        smaller decides.
        """
        if vec.count() < self._row_nodes.size:
            positions = self._row_index[vec.iter_ones()]
            return self._packed[positions[positions >= 0]]
        selected = (vec.words[self._word_idx] >> self._bit_shift) & np.uint64(1)
        return self._packed[selected != 0]

    # -- logical accessors ---------------------------------------------

    def row(self, i: int) -> Bitset | None:
        """The row of node ``i`` or None when it is all-zero."""
        return self.rows.get(i)

    def successors(self, i: int) -> Iterable[int]:
        row = self.rows.get(i)
        return iter(row) if row is not None else iter(())

    def has_edge(self, src: int, dst: int) -> bool:
        row = self.rows.get(src)
        return row is not None and dst in row

    def density(self) -> float:
        """Fraction of set bits; the sparsity signal for heuristics."""
        if self.n == 0:
            return 0.0
        return self.n_edges / float(self.n * self.n)

    # -- products ------------------------------------------------------

    def product_rowwise(self, vec: Bitset) -> Bitset:
        """``vec x_b A`` by OR-ing the rows selected by ``vec``."""
        if vec.nbits != self.n:
            raise DimensionMismatchError(
                f"vector width {vec.nbits} != matrix size {self.n}"
            )
        if active_kernel() != REFERENCE:
            # Both vectorized kernels (packed and batched) share the
            # per-matrix block product; "batched" only changes how the
            # solver groups whole rounds (see repro.core.batched).
            self.pack()
            block = self._selected_block(vec)
            if block.shape[0] == 0:
                return Bitset.zeros(self.n)
            return Bitset._wrap(self.n, np.bitwise_or.reduce(block, axis=0))
        out = Bitset.zeros(self.n)
        # Only nodes with a row can contribute; pre-filter via summary.
        if not vec.intersects(self.summary):
            return out
        for i in (vec & self.summary).iter_ones():
            out |= self.rows[int(i)]
        return out


class LabelMatrixPair:
    """Forward and backward adjacency of a single label, kept in sync.

    The backward matrix is exactly the transpose of the forward one,
    which is what makes the column-wise product cheap: column ``j`` of
    ``F_a`` is row ``j`` of ``B_a`` and vice versa.
    """

    __slots__ = ("n", "forward", "backward")

    def __init__(self, n: int):
        self.n = n
        self.forward = AdjacencyMatrix(n)
        self.backward = AdjacencyMatrix(n)

    def add_edge(self, src: int, dst: int) -> None:
        self.forward.add(src, dst)
        self.backward.add(dst, src)

    def pack(self) -> "LabelMatrixPair":
        """Pack both directions (idempotent); returns self."""
        self.forward.pack()
        self.backward.pack()
        return self

    @property
    def n_edges(self) -> int:
        return self.forward.n_edges

    def product(
        self,
        vec: Bitset,
        direction: str,
        mask: Bitset | None = None,
        strategy: str = "auto",
    ) -> Bitset:
        """``vec x_b F_a`` (direction='forward') or ``vec x_b B_a``.

        When ``mask`` is given, the result is additionally intersected
        with it — that is exactly the solver's use (the product result
        is always ANDed into the target's candidate vector), and what
        makes the column-wise strategy worthwhile.

        ``strategy`` is one of ``"row"``, ``"column"``, ``"auto"``.
        Column-wise evaluation requires a mask.
        """
        if direction == "forward":
            primary, dual = self.forward, self.backward
        elif direction == "backward":
            primary, dual = self.backward, self.forward
        else:
            raise ValueError(f"unknown direction: {direction!r}")

        if strategy == "auto":
            if mask is not None and mask.count() < vec.count():
                strategy = "column"
            else:
                strategy = "row"

        if strategy == "row":
            out = primary.product_rowwise(vec)
            if mask is not None:
                out &= mask
            return out

        if strategy == "column":
            if mask is None:
                raise ValueError("column-wise product requires a mask")
            # result(j) = 1 iff dual.row(j) intersects vec, for j in mask.
            if active_kernel() != REFERENCE:
                dual.pack()
                candidates = mask.iter_ones()
                positions = dual._row_index[candidates]
                with_rows = positions >= 0
                candidates = candidates[with_rows]
                if candidates.size == 0:
                    return Bitset.zeros(self.n)
                block = dual._packed[positions[with_rows]]
                hits = np.bitwise_and(block, vec.words).any(axis=1)
                return Bitset.from_indices(self.n, candidates[hits])
            out = Bitset.zeros(self.n)
            candidates = mask & dual.summary
            for j in candidates.iter_ones():
                if dual.rows[int(j)].intersects(vec):
                    out.add(int(j))
            return out

        raise ValueError(f"unknown strategy: {strategy!r}")


def build_label_matrices(
    n: int, edges: Iterable[Tuple[int, str, int]]
) -> Dict[str, LabelMatrixPair]:
    """Build one :class:`LabelMatrixPair` per label from integer triples."""
    matrices: Dict[str, LabelMatrixPair] = {}
    for src, label, dst in edges:
        pair = matrices.get(label)
        if pair is None:
            pair = LabelMatrixPair(n)
            matrices[label] = pair
        pair.add_edge(src, dst)
    return matrices
