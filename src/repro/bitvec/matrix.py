"""Per-label adjacency bit-matrices (Sect. 3.2 of the paper).

For every edge label ``a`` the paper stores two adjacency matrices
``F_a`` (forward) and ``B_a`` (backward).  Dense |V|x|V| bit matrices
are wasteful for sparse graphs, so rows are materialized only for
nodes that actually have ``a``-labeled edges (a dict from node index
to a :class:`Bitset` row); absent rows are all-zero.  This mirrors
the gap-encoded storage the paper's prototype uses.

The core operation is the bit-vector x bit-matrix product (Eq. (9)):

    ``(chi x_b F_a)(j) = 1`` iff exists ``i`` with ``chi(i) = 1`` and
    ``F_a(i, j) = 1``.

Two evaluation strategies are provided, matching Sect. 3.3:

* *row-wise*  — OR together the rows selected by set bits of ``chi``;
  cost is proportional to ``popcount(chi)``.
* *column-wise* — restricted to a target mask, test for each masked
  column ``j`` whether the *transposed* row (i.e. the row of the dual
  matrix) intersects ``chi``; cost is proportional to
  ``popcount(mask)``.

Both return identical results; the solver picks per evaluation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from repro.bitvec.bitset import Bitset
from repro.errors import DimensionMismatchError


class AdjacencyMatrix:
    """One direction (forward or backward) of a label's adjacency.

    ``rows[i]`` is the bitset of nodes reachable from ``i`` via one
    edge of this label and direction.  ``summary`` is the paper's
    ``f_a`` / ``b_a`` vector (Eq. (13)): bit ``i`` is set iff row ``i``
    is non-empty.
    """

    __slots__ = ("n", "rows", "summary", "n_edges")

    def __init__(self, n: int):
        self.n = n
        self.rows: Dict[int, Bitset] = {}
        self.summary = Bitset.zeros(n)
        self.n_edges = 0

    def add(self, src: int, dst: int) -> None:
        """Record an edge src -> dst (in this direction's orientation)."""
        row = self.rows.get(src)
        if row is None:
            row = Bitset.zeros(self.n)
            self.rows[src] = row
            self.summary.add(src)
        if dst not in row:
            row.add(dst)
            self.n_edges += 1

    def row(self, i: int) -> Bitset | None:
        """The row of node ``i`` or None when it is all-zero."""
        return self.rows.get(i)

    def successors(self, i: int) -> Iterable[int]:
        row = self.rows.get(i)
        return iter(row) if row is not None else iter(())

    def has_edge(self, src: int, dst: int) -> bool:
        row = self.rows.get(src)
        return row is not None and dst in row

    def density(self) -> float:
        """Fraction of set bits; the sparsity signal for heuristics."""
        if self.n == 0:
            return 0.0
        return self.n_edges / float(self.n * self.n)

    def product_rowwise(self, vec: Bitset) -> Bitset:
        """``vec x_b A`` by OR-ing the rows selected by ``vec``."""
        if vec.nbits != self.n:
            raise DimensionMismatchError(
                f"vector width {vec.nbits} != matrix size {self.n}"
            )
        out = Bitset.zeros(self.n)
        # Only nodes with a row can contribute; pre-filter via summary.
        if not vec.intersects(self.summary):
            return out
        for i in (vec & self.summary).iter_ones():
            out |= self.rows[int(i)]
        return out


class LabelMatrixPair:
    """Forward and backward adjacency of a single label, kept in sync.

    The backward matrix is exactly the transpose of the forward one,
    which is what makes the column-wise product cheap: column ``j`` of
    ``F_a`` is row ``j`` of ``B_a`` and vice versa.
    """

    __slots__ = ("n", "forward", "backward")

    def __init__(self, n: int):
        self.n = n
        self.forward = AdjacencyMatrix(n)
        self.backward = AdjacencyMatrix(n)

    def add_edge(self, src: int, dst: int) -> None:
        self.forward.add(src, dst)
        self.backward.add(dst, src)

    @property
    def n_edges(self) -> int:
        return self.forward.n_edges

    def product(
        self,
        vec: Bitset,
        direction: str,
        mask: Bitset | None = None,
        strategy: str = "auto",
    ) -> Bitset:
        """``vec x_b F_a`` (direction='forward') or ``vec x_b B_a``.

        When ``mask`` is given, the result is additionally intersected
        with it — that is exactly the solver's use (the product result
        is always ANDed into the target's candidate vector), and what
        makes the column-wise strategy worthwhile.

        ``strategy`` is one of ``"row"``, ``"column"``, ``"auto"``.
        Column-wise evaluation requires a mask.
        """
        if direction == "forward":
            primary, dual = self.forward, self.backward
        elif direction == "backward":
            primary, dual = self.backward, self.forward
        else:
            raise ValueError(f"unknown direction: {direction!r}")

        if strategy == "auto":
            if mask is not None and mask.count() < vec.count():
                strategy = "column"
            else:
                strategy = "row"

        if strategy == "row":
            out = primary.product_rowwise(vec)
            if mask is not None:
                out &= mask
            return out

        if strategy == "column":
            if mask is None:
                raise ValueError("column-wise product requires a mask")
            out = Bitset.zeros(self.n)
            # result(j) = 1 iff dual.row(j) intersects vec, for j in mask.
            candidates = mask & dual.summary
            for j in candidates.iter_ones():
                if dual.rows[int(j)].intersects(vec):
                    out.add(int(j))
            return out

        raise ValueError(f"unknown strategy: {strategy!r}")


def build_label_matrices(
    n: int, edges: Iterable[Tuple[int, str, int]]
) -> Dict[str, LabelMatrixPair]:
    """Build one :class:`LabelMatrixPair` per label from integer triples."""
    matrices: Dict[str, LabelMatrixPair] = {}
    for src, label, dst in edges:
        pair = matrices.get(label)
        if pair is None:
            pair = LabelMatrixPair(n)
            matrices[label] = pair
        pair.add_edge(src, dst)
    return matrices
