"""Gap-length (run-length) encoding of bit-vectors.

The paper notes (Sect. 3.3) that its prototype relies on "bit-vector
storage techniques, such as gap-length encoding", so that "the worst
memory consumption might not occur with the label storing the most
bits".  This module provides that storage layer:

* :func:`encode` / :func:`decode` — a bitset as alternating run
  lengths of zeros and ones (starting with a zero-run), as a NumPy
  ``uint32`` array;
* :class:`GapEncodedMatrix` — an adjacency matrix whose rows are kept
  gap-encoded and materialized to :class:`Bitset` on access (with a
  small LRU of hot rows);
* :func:`memory_report` — estimated bytes of the dense-word vs.
  gap-encoded representations of a graph's label matrices, the
  quantity behind the paper's 35 GB / 23 GB discussion.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.bitvec.bitset import Bitset
from repro.graph.graph import Graph

_RUN_DTYPE = np.uint32
_RUN_MAX = int(np.iinfo(_RUN_DTYPE).max)


def encode(bitset: Bitset) -> np.ndarray:
    """Run lengths of alternating zero/one runs, zero-run first.

    Example: 0011101 -> [2, 3, 1, 1] (two zeros, three ones, one
    zero, one one).  An empty vector encodes to an empty array.
    """
    n = bitset.nbits
    if n == 0:
        return np.empty(0, dtype=_RUN_DTYPE)
    bits = np.unpackbits(bitset.words.view(np.uint8), bitorder="little")[:n]
    # Boundaries where the bit value changes.
    changes = np.flatnonzero(np.diff(bits)) + 1
    starts = np.concatenate(([0], changes))
    ends = np.concatenate((changes, [n]))
    runs = (ends - starts).astype(np.int64)
    if bits[0] == 1:
        # Prepend an empty zero-run so decoding always starts at zero.
        runs = np.concatenate(([0], runs))
    if runs.size and runs.max() > _RUN_MAX:
        raise OverflowError("run length exceeds uint32")
    return runs.astype(_RUN_DTYPE)


def decode(runs: np.ndarray, nbits: int) -> Bitset:
    """Inverse of :func:`encode`."""
    out = Bitset.zeros(nbits)
    if runs.size == 0:
        return out
    position = 0
    value = 0
    ones: list = []
    for run in runs.tolist():
        if value:
            ones.extend(range(position, position + run))
        position += run
        value ^= 1
    if position != nbits:
        raise ValueError(
            f"run lengths sum to {position}, expected {nbits}"
        )
    return Bitset.from_indices(nbits, ones) if ones else out


def encoded_bytes(runs: np.ndarray) -> int:
    return int(runs.nbytes)


def dense_bytes(nbits: int) -> int:
    """Bytes of the dense uint64-word representation."""
    return ((nbits + 63) // 64) * 8


class GapEncodedMatrix:
    """An adjacency matrix stored with gap-encoded rows.

    Functionally equivalent to the row dict of
    :class:`~repro.bitvec.matrix.AdjacencyMatrix`; rows decompress on
    access through a bounded LRU cache.
    """

    def __init__(self, n: int, cache_rows: int = 64):
        self.n = n
        self._rows: Dict[int, np.ndarray] = {}
        self._cache: "OrderedDict[int, Bitset]" = OrderedDict()
        self._cache_rows = cache_rows

    @classmethod
    def from_rows(
        cls, n: int, rows: Dict[int, Bitset], cache_rows: int = 64
    ) -> "GapEncodedMatrix":
        matrix = cls(n, cache_rows)
        for index, row in rows.items():
            matrix._rows[index] = encode(row)
        return matrix

    def __contains__(self, index: int) -> bool:
        return index in self._rows

    def row(self, index: int) -> Bitset | None:
        packed = self._rows.get(index)
        if packed is None:
            return None
        cached = self._cache.get(index)
        if cached is not None:
            self._cache.move_to_end(index)
            return cached
        decoded = decode(packed, self.n)
        self._cache[index] = decoded
        if len(self._cache) > self._cache_rows:
            self._cache.popitem(last=False)
        return decoded

    def stored_bytes(self) -> int:
        return sum(encoded_bytes(r) for r in self._rows.values())

    def dense_equivalent_bytes(self) -> int:
        return len(self._rows) * dense_bytes(self.n)


@dataclass
class LabelMemory:
    """Memory footprint of one label's adjacency matrices."""

    label: str
    n_edges: int
    dense: int
    encoded: int

    @property
    def ratio(self) -> float:
        if self.dense == 0:
            return 1.0
        return self.encoded / self.dense


def memory_report(graph: Graph) -> Dict[str, LabelMemory]:
    """Per-label dense vs. gap-encoded byte estimates (F and B)."""
    report: Dict[str, LabelMemory] = {}
    for label, pair in graph.matrices().items():
        dense = 0
        encoded_total = 0
        for side in (pair.forward, pair.backward):
            for row in side.rows.values():
                dense += dense_bytes(graph.n_nodes)
                encoded_total += encoded_bytes(encode(row))
        report[str(label)] = LabelMemory(
            label=str(label),
            n_edges=pair.n_edges,
            dense=dense,
            encoded=encoded_total,
        )
    return report


def total_memory(report: Dict[str, LabelMemory]) -> Tuple[int, int]:
    """(dense_bytes, encoded_bytes) summed over all labels."""
    dense = sum(m.dense for m in report.values())
    encoded = sum(m.encoded for m in report.values())
    return dense, encoded
