"""Gap-length (run-length) encoding of bit-vectors.

The paper notes (Sect. 3.3) that its prototype relies on "bit-vector
storage techniques, such as gap-length encoding", so that "the worst
memory consumption might not occur with the label storing the most
bits".  This module provides that storage layer:

* :func:`encode` / :func:`decode` — a bitset as alternating run
  lengths of zeros and ones (starting with a zero-run), as a NumPy
  ``uint32`` array;
* :class:`GapEncodedMatrix` — an adjacency matrix whose rows are kept
  gap-encoded and materialized to :class:`Bitset` on access (with a
  small LRU of hot rows);
* :func:`memory_report` — estimated bytes of the dense-word vs.
  gap-encoded representations of a graph's label matrices, the
  quantity behind the paper's 35 GB / 23 GB discussion.

Gap encoding is the cold-storage format; the solver's hot path runs
on the packed row blocks of :class:`~repro.bitvec.matrix.AdjacencyMatrix`
(see :mod:`repro.bitvec.kernel`).  The import path between the two is
:meth:`GapEncodedMatrix.from_adjacency` (compress a built matrix) and
:meth:`GapEncodedMatrix.to_adjacency` (decompress all rows and pack
them into one contiguous block, ready for the vectorized products).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.bitvec.bitset import Bitset
from repro.graph.graph import Graph

_RUN_DTYPE = np.uint32
_RUN_MAX = int(np.iinfo(_RUN_DTYPE).max)


def encode(bitset: Bitset) -> np.ndarray:
    """Run lengths of alternating zero/one runs, zero-run first.

    Example: 0011101 -> [2, 3, 1, 1] (two zeros, three ones, one
    zero, one one).  An empty vector encodes to an empty array.
    """
    n = bitset.nbits
    if n == 0:
        return np.empty(0, dtype=_RUN_DTYPE)
    bits = np.unpackbits(bitset.words.view(np.uint8), bitorder="little")[:n]
    # Boundaries where the bit value changes.
    changes = np.flatnonzero(np.diff(bits)) + 1
    starts = np.concatenate(([0], changes))
    ends = np.concatenate((changes, [n]))
    runs = (ends - starts).astype(np.int64)
    if bits[0] == 1:
        # Prepend an empty zero-run so decoding always starts at zero.
        runs = np.concatenate(([0], runs))
    if runs.size and runs.max() > _RUN_MAX:
        raise OverflowError("run length exceeds uint32")
    return runs.astype(_RUN_DTYPE)


def decode(runs: np.ndarray, nbits: int) -> Bitset:
    """Inverse of :func:`encode` (vectorized: no per-bit Python loop)."""
    out = Bitset.zeros(nbits)
    if runs.size == 0:
        return out
    ends = np.cumsum(runs.astype(np.int64))
    if int(ends[-1]) != nbits:
        raise ValueError(
            f"run lengths sum to {int(ends[-1])}, expected {nbits}"
        )
    starts = ends - runs
    # One-runs sit at odd positions (encoding starts with a zero-run).
    one_starts = starts[1::2]
    lengths = (ends[1::2] - one_starts).astype(np.int64)
    keep = lengths > 0
    one_starts, lengths = one_starts[keep], lengths[keep]
    if lengths.size == 0:
        return out
    # Expand [start, start+length) ranges into flat indices.
    offsets = np.repeat(lengths.cumsum() - lengths, lengths)
    ones = np.repeat(one_starts, lengths) + (
        np.arange(int(lengths.sum()), dtype=np.int64) - offsets
    )
    return Bitset.from_indices(nbits, ones)


def encoded_bytes(runs: np.ndarray) -> int:
    return int(runs.nbytes)


def dense_bytes(nbits: int) -> int:
    """Bytes of the dense uint64-word representation."""
    return ((nbits + 63) // 64) * 8


class GapEncodedMatrix:
    """An adjacency matrix stored with gap-encoded rows.

    Functionally equivalent to the row dict of
    :class:`~repro.bitvec.matrix.AdjacencyMatrix`; rows decompress on
    access through a bounded LRU cache.
    """

    def __init__(self, n: int, cache_rows: int = 64):
        self.n = n
        self._rows: Dict[int, np.ndarray] = {}
        self._cache: "OrderedDict[int, Bitset]" = OrderedDict()
        self._cache_rows = cache_rows

    @classmethod
    def from_rows(
        cls, n: int, rows: Dict[int, Bitset], cache_rows: int = 64
    ) -> "GapEncodedMatrix":
        matrix = cls(n, cache_rows)
        for index, row in rows.items():
            matrix._rows[index] = encode(row)
        return matrix

    @classmethod
    def from_adjacency(
        cls, adjacency, cache_rows: int = 64
    ) -> "GapEncodedMatrix":
        """Compress a built :class:`~repro.bitvec.matrix.AdjacencyMatrix`."""
        return cls.from_rows(adjacency.n, adjacency.rows, cache_rows)

    def to_adjacency(self):
        """Decompress into a packed :class:`AdjacencyMatrix`.

        The import path from cold gap-encoded storage to the hot
        kernel: every row is decoded once and the result is packed
        into the contiguous row block the vectorized products run on.
        """
        from repro.bitvec.matrix import AdjacencyMatrix

        out = AdjacencyMatrix(self.n)
        for index in sorted(self._rows):
            row = decode(self._rows[index], self.n)
            if row.is_empty():
                continue  # keep the summary == non-empty-rows invariant
            out.rows[index] = row
            out.summary.add(index)
            out.n_edges += row.count()
        out.pack()
        return out

    def __contains__(self, index: int) -> bool:
        return index in self._rows

    def row(self, index: int) -> Bitset | None:
        packed = self._rows.get(index)
        if packed is None:
            return None
        cached = self._cache.get(index)
        if cached is not None:
            self._cache.move_to_end(index)
            return cached
        decoded = decode(packed, self.n)
        self._cache[index] = decoded
        if len(self._cache) > self._cache_rows:
            self._cache.popitem(last=False)
        return decoded

    def stored_bytes(self) -> int:
        return sum(encoded_bytes(r) for r in self._rows.values())

    def dense_equivalent_bytes(self) -> int:
        return len(self._rows) * dense_bytes(self.n)


@dataclass
class LabelMemory:
    """Memory footprint of one label's adjacency matrices."""

    label: str
    n_edges: int
    dense: int
    encoded: int

    @property
    def ratio(self) -> float:
        if self.dense == 0:
            return 1.0
        return self.encoded / self.dense


def memory_report(graph: Graph) -> Dict[str, LabelMemory]:
    """Per-label dense vs. gap-encoded byte estimates (F and B)."""
    report: Dict[str, LabelMemory] = {}
    for label, pair in graph.matrices().items():
        dense = 0
        encoded_total = 0
        for side in (pair.forward, pair.backward):
            for row in side.rows.values():
                dense += dense_bytes(graph.n_nodes)
                encoded_total += encoded_bytes(encode(row))
        report[str(label)] = LabelMemory(
            label=str(label),
            n_edges=pair.n_edges,
            dense=dense,
            encoded=encoded_total,
        )
    return report


def total_memory(report: Dict[str, LabelMemory]) -> Tuple[int, int]:
    """(dense_bytes, encoded_bytes) summed over all labels."""
    dense = sum(m.dense for m in report.values())
    encoded = sum(m.encoded for m in report.values())
    return dense, encoded
