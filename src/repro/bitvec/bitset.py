"""Fixed-width bitsets backed by NumPy ``uint64`` words.

The SOI solver of the paper (Sect. 3.2) manipulates candidate sets
``chi_S(v)`` and adjacency-matrix rows as bit-vectors.  This module
provides that substrate: a mutable fixed-width bitset with the bulk
operations the solver needs (AND/OR/AND-NOT, subset and intersection
tests, popcount, set-bit iteration), all vectorized over 64-bit words.

Bits beyond ``nbits`` (the *tail*) are kept at zero as a class
invariant, which makes equality, popcount and subset tests plain word
comparisons.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import DimensionMismatchError

_WORD_BITS = 64

# Bit-position lookup for iter_ones(): unpackbits works on uint8 views.
_UINT8_BITORDER = "little"


def _word_count(nbits: int) -> int:
    return (nbits + _WORD_BITS - 1) // _WORD_BITS


def _tail_mask(nbits: int) -> int:
    """Mask selecting the valid bits of the last word."""
    rem = nbits % _WORD_BITS
    if rem == 0:
        return 0xFFFFFFFFFFFFFFFF
    return (1 << rem) - 1


class Bitset:
    """A mutable set of integers in ``range(nbits)`` stored bitwise.

    Instances are intentionally *not* hashable: the solver mutates
    candidate vectors in place.  Use :meth:`to_frozenset` when a
    hashable snapshot is needed.
    """

    __slots__ = ("nbits", "words")

    def __init__(self, nbits: int, words: np.ndarray | None = None):
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        self.nbits = nbits
        if words is None:
            self.words = np.zeros(_word_count(nbits), dtype=np.uint64)
        else:
            if words.dtype != np.uint64 or words.shape != (_word_count(nbits),):
                raise DimensionMismatchError(
                    f"expected {_word_count(nbits)} uint64 words for "
                    f"{nbits} bits, got {words.shape} of {words.dtype}"
                )
            self.words = words

    # -- constructors -------------------------------------------------

    @classmethod
    def zeros(cls, nbits: int) -> "Bitset":
        """The empty set over a domain of ``nbits`` elements."""
        return cls(nbits)

    @classmethod
    def ones(cls, nbits: int) -> "Bitset":
        """The full set {0, .., nbits-1}."""
        out = cls(nbits)
        out.words.fill(0xFFFFFFFFFFFFFFFF)
        if out.words.size:
            out.words[-1] = np.uint64(_tail_mask(nbits))
        return out

    @classmethod
    def from_indices(cls, nbits: int, indices: Iterable[int]) -> "Bitset":
        """Build a bitset from an iterable of member indices."""
        out = cls(nbits)
        idx = np.fromiter(indices, dtype=np.int64)
        if idx.size == 0:
            return out
        if idx.min() < 0 or idx.max() >= nbits:
            raise IndexError(f"index out of range for {nbits}-bit set")
        np.bitwise_or.at(
            out.words,
            idx // _WORD_BITS,
            np.uint64(1) << (idx % _WORD_BITS).astype(np.uint64),
        )
        return out

    @classmethod
    def singleton(cls, nbits: int, index: int) -> "Bitset":
        """The one-element set {index}."""
        out = cls(nbits)
        out.add(index)
        return out

    def copy(self) -> "Bitset":
        return Bitset(self.nbits, self.words.copy())

    # -- element access -----------------------------------------------

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.nbits:
            raise IndexError(f"bit {index} out of range [0, {self.nbits})")

    def add(self, index: int) -> None:
        self._check_index(index)
        self.words[index // _WORD_BITS] |= np.uint64(1 << (index % _WORD_BITS))

    def discard(self, index: int) -> None:
        self._check_index(index)
        self.words[index // _WORD_BITS] &= np.uint64(
            ~(1 << (index % _WORD_BITS)) & 0xFFFFFFFFFFFFFFFF
        )

    def __contains__(self, index: int) -> bool:
        if not 0 <= index < self.nbits:
            return False
        word = int(self.words[index // _WORD_BITS])
        return bool((word >> (index % _WORD_BITS)) & 1)

    # -- bulk queries ---------------------------------------------------

    def count(self) -> int:
        """Number of set bits (popcount)."""
        return int(np.bitwise_count(self.words).sum())

    def __len__(self) -> int:
        return self.count()

    def any(self) -> bool:
        return bool(self.words.any())

    def is_empty(self) -> bool:
        return not self.words.any()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitset):
            return NotImplemented
        return self.nbits == other.nbits and bool(
            np.array_equal(self.words, other.words)
        )

    __hash__ = None  # type: ignore[assignment]  # mutable

    def _check_width(self, other: "Bitset") -> None:
        if self.nbits != other.nbits:
            raise DimensionMismatchError(
                f"bitset width mismatch: {self.nbits} vs {other.nbits}"
            )

    def issubset(self, other: "Bitset") -> bool:
        """True iff ``self <= other`` component-wise (paper's ``<=``)."""
        self._check_width(other)
        return not np.any(self.words & ~other.words)

    def __le__(self, other: "Bitset") -> bool:
        return self.issubset(other)

    def intersects(self, other: "Bitset") -> bool:
        """True iff the two sets share at least one element."""
        self._check_width(other)
        return bool(np.any(self.words & other.words))

    def isdisjoint(self, other: "Bitset") -> bool:
        return not self.intersects(other)

    # -- bulk operations -----------------------------------------------

    def __and__(self, other: "Bitset") -> "Bitset":
        self._check_width(other)
        return Bitset(self.nbits, self.words & other.words)

    def __or__(self, other: "Bitset") -> "Bitset":
        self._check_width(other)
        return Bitset(self.nbits, self.words | other.words)

    def __xor__(self, other: "Bitset") -> "Bitset":
        self._check_width(other)
        return Bitset(self.nbits, self.words ^ other.words)

    def __sub__(self, other: "Bitset") -> "Bitset":
        self._check_width(other)
        return Bitset(self.nbits, self.words & ~other.words)

    def __iand__(self, other: "Bitset") -> "Bitset":
        self._check_width(other)
        self.words &= other.words
        return self

    def __ior__(self, other: "Bitset") -> "Bitset":
        self._check_width(other)
        self.words |= other.words
        return self

    def __ixor__(self, other: "Bitset") -> "Bitset":
        self._check_width(other)
        self.words ^= other.words
        return self

    def __isub__(self, other: "Bitset") -> "Bitset":
        self._check_width(other)
        self.words &= ~other.words
        return self

    def __invert__(self) -> "Bitset":
        out = Bitset(self.nbits, ~self.words)
        if out.words.size:
            out.words[-1] &= np.uint64(_tail_mask(self.nbits))
        return out

    def intersection_update(self, other: "Bitset") -> bool:
        """In-place AND; returns True iff ``self`` shrank."""
        self._check_width(other)
        before = int(np.bitwise_count(self.words).sum())
        self.words &= other.words
        return int(np.bitwise_count(self.words).sum()) < before

    def clear(self) -> None:
        self.words.fill(0)

    def fill(self) -> None:
        self.words.fill(0xFFFFFFFFFFFFFFFF)
        if self.words.size:
            self.words[-1] = np.uint64(_tail_mask(self.nbits))

    # -- iteration / conversion ------------------------------------------

    def iter_ones(self) -> np.ndarray:
        """Indices of set bits, ascending, as an int64 array."""
        if not self.words.any():
            return np.empty(0, dtype=np.int64)
        bits = np.unpackbits(
            self.words.view(np.uint8), bitorder=_UINT8_BITORDER
        )
        return np.flatnonzero(bits).astype(np.int64)

    def __iter__(self) -> Iterator[int]:
        return iter(self.iter_ones().tolist())

    def to_set(self) -> set[int]:
        return set(self.iter_ones().tolist())

    def to_frozenset(self) -> frozenset[int]:
        return frozenset(self.iter_ones().tolist())

    def first(self) -> int | None:
        """Smallest member, or None when empty."""
        nz = np.flatnonzero(self.words)
        if nz.size == 0:
            return None
        word_idx = int(nz[0])
        word = int(self.words[word_idx])
        return word_idx * _WORD_BITS + (word & -word).bit_length() - 1

    def __repr__(self) -> str:
        n = self.count()
        if n <= 12:
            members = ", ".join(str(i) for i in self)
            return f"Bitset({self.nbits}, {{{members}}})"
        return f"Bitset({self.nbits}, |.|={n})"
