"""Fixed-width bitsets backed by NumPy ``uint64`` words.

The SOI solver of the paper (Sect. 3.2) manipulates candidate sets
``chi_S(v)`` and adjacency-matrix rows as bit-vectors.  This module
provides that substrate: a mutable fixed-width bitset with the bulk
operations the solver needs (AND/OR/AND-NOT, subset and intersection
tests, popcount, set-bit iteration), all vectorized over 64-bit words.

Bits beyond ``nbits`` (the *tail*) are kept at zero as a class
invariant, which makes equality, popcount and subset tests plain word
comparisons.

Popcounts are cached: :meth:`Bitset.count` computes the word-wise
``bitwise_count`` sum once and remembers it until the next mutating
operation invalidates it.  The SOI solver reads candidate-row counts
on every evaluation, so rows that did not change between evaluations
answer in O(1) instead of rescanning their words (the "popcount tax"
of the seed implementation).

Mutating ``bitset.words`` directly (rather than through the methods
here) bypasses the cache; callers that do so must treat the bitset as
read-only or construct a fresh ``Bitset`` around the words.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import DimensionMismatchError

_WORD_BITS = 64

# Bit-position lookup for iter_ones(): unpackbits works on uint8 views.
_UINT8_BITORDER = "little"


def _word_count(nbits: int) -> int:
    return (nbits + _WORD_BITS - 1) // _WORD_BITS


def _tail_mask(nbits: int) -> int:
    """Mask selecting the valid bits of the last word."""
    rem = nbits % _WORD_BITS
    if rem == 0:
        return 0xFFFFFFFFFFFFFFFF
    return (1 << rem) - 1


class Bitset:
    """A mutable set of integers in ``range(nbits)`` stored bitwise.

    Instances are intentionally *not* hashable: the solver mutates
    candidate vectors in place.  Use :meth:`to_frozenset` when a
    hashable snapshot is needed.
    """

    __slots__ = ("nbits", "words", "_count", "_ones")

    def __init__(self, nbits: int, words: np.ndarray | None = None):
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        self.nbits = nbits
        self._ones = None
        if words is None:
            self.words = np.zeros(_word_count(nbits), dtype=np.uint64)
            self._count = 0
        else:
            if words.dtype != np.uint64 or words.shape != (_word_count(nbits),):
                raise DimensionMismatchError(
                    f"expected {_word_count(nbits)} uint64 words for "
                    f"{nbits} bits, got {words.shape} of {words.dtype}"
                )
            self.words = words
            self._count = -1

    # -- constructors -------------------------------------------------

    @classmethod
    def zeros(cls, nbits: int) -> "Bitset":
        """The empty set over a domain of ``nbits`` elements."""
        return cls(nbits)

    @classmethod
    def ones(cls, nbits: int) -> "Bitset":
        """The full set {0, .., nbits-1}."""
        out = cls(nbits)
        out.words.fill(0xFFFFFFFFFFFFFFFF)
        if out.words.size:
            out.words[-1] = np.uint64(_tail_mask(nbits))
        out._count = nbits
        out._ones = None
        return out

    @classmethod
    def _wrap(cls, nbits: int, words: np.ndarray) -> "Bitset":
        """Adopt ``words`` without validation (kernel-internal)."""
        out = object.__new__(cls)
        out.nbits = nbits
        out.words = words
        out._count = -1
        out._ones = None
        return out

    @classmethod
    def from_indices(cls, nbits: int, indices: Iterable[int]) -> "Bitset":
        """Build a bitset from an iterable of member indices."""
        if isinstance(indices, np.ndarray):
            idx = indices.astype(np.int64, copy=False)
        else:
            idx = np.fromiter(indices, dtype=np.int64)
        if idx.size == 0:
            return cls(nbits)
        if nbits < 0:
            raise ValueError("nbits must be non-negative")
        if idx.min() < 0 or idx.max() >= nbits:
            raise IndexError(f"index out of range for {nbits}-bit set")
        if idx.size * 16 < nbits:
            # Sparse: per-element scatter, O(len(idx)) — avoids the
            # O(nbits) mask pass below on the solver's hot path.
            out = cls(nbits)
            np.bitwise_or.at(
                out.words,
                idx // _WORD_BITS,
                np.uint64(1) << (idx % _WORD_BITS).astype(np.uint64),
            )
            out._count = -1
            return out
        # Dense-ish: scatter into a byte mask and pack — faster than
        # the per-element ufunc.at scatter for everything but tiny sets.
        mask = np.zeros(_word_count(nbits) * _WORD_BITS, dtype=np.uint8)
        mask[idx] = 1
        return cls._wrap(
            nbits, np.packbits(mask, bitorder=_UINT8_BITORDER).view(np.uint64)
        )

    @classmethod
    def singleton(cls, nbits: int, index: int) -> "Bitset":
        """The one-element set {index}."""
        out = cls(nbits)
        out.add(index)
        return out

    def copy(self) -> "Bitset":
        out = Bitset(self.nbits, self.words.copy())
        out._count = self._count
        out._ones = self._ones
        return out

    # -- element access -----------------------------------------------

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.nbits:
            raise IndexError(f"bit {index} out of range [0, {self.nbits})")

    def add(self, index: int) -> None:
        self._check_index(index)
        self.words[index // _WORD_BITS] |= np.uint64(1 << (index % _WORD_BITS))
        self._count = -1
        self._ones = None

    def discard(self, index: int) -> None:
        self._check_index(index)
        self.words[index // _WORD_BITS] &= np.uint64(
            ~(1 << (index % _WORD_BITS)) & 0xFFFFFFFFFFFFFFFF
        )
        self._count = -1
        self._ones = None

    def __contains__(self, index: int) -> bool:
        if not 0 <= index < self.nbits:
            return False
        word = int(self.words[index // _WORD_BITS])
        return bool((word >> (index % _WORD_BITS)) & 1)

    # -- bulk queries ---------------------------------------------------

    def count(self) -> int:
        """Number of set bits (popcount); cached until the next mutation."""
        if self._count < 0:
            self._count = int(np.bitwise_count(self.words).sum())
        return self._count

    def __len__(self) -> int:
        return self.count()

    def any(self) -> bool:
        return bool(self.words.any())

    def is_empty(self) -> bool:
        return not self.words.any()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitset):
            return NotImplemented
        return self.nbits == other.nbits and bool(
            np.array_equal(self.words, other.words)
        )

    __hash__ = None  # type: ignore[assignment]  # mutable

    def _check_width(self, other: "Bitset") -> None:
        if self.nbits != other.nbits:
            raise DimensionMismatchError(
                f"bitset width mismatch: {self.nbits} vs {other.nbits}"
            )

    def issubset(self, other: "Bitset") -> bool:
        """True iff ``self <= other`` component-wise (paper's ``<=``)."""
        self._check_width(other)
        return not np.any(self.words & ~other.words)

    def __le__(self, other: "Bitset") -> bool:
        return self.issubset(other)

    def intersects(self, other: "Bitset") -> bool:
        """True iff the two sets share at least one element."""
        self._check_width(other)
        return bool(np.any(self.words & other.words))

    def isdisjoint(self, other: "Bitset") -> bool:
        return not self.intersects(other)

    # -- bulk operations -----------------------------------------------

    def __and__(self, other: "Bitset") -> "Bitset":
        self._check_width(other)
        return Bitset._wrap(self.nbits, self.words & other.words)

    def __or__(self, other: "Bitset") -> "Bitset":
        self._check_width(other)
        return Bitset._wrap(self.nbits, self.words | other.words)

    def __xor__(self, other: "Bitset") -> "Bitset":
        self._check_width(other)
        return Bitset._wrap(self.nbits, self.words ^ other.words)

    def __sub__(self, other: "Bitset") -> "Bitset":
        self._check_width(other)
        return Bitset._wrap(self.nbits, self.words & ~other.words)

    def __iand__(self, other: "Bitset") -> "Bitset":
        self._check_width(other)
        self.words &= other.words
        self._count = -1
        self._ones = None
        return self

    def __ior__(self, other: "Bitset") -> "Bitset":
        self._check_width(other)
        self.words |= other.words
        self._count = -1
        self._ones = None
        return self

    def __ixor__(self, other: "Bitset") -> "Bitset":
        self._check_width(other)
        self.words ^= other.words
        self._count = -1
        self._ones = None
        return self

    def __isub__(self, other: "Bitset") -> "Bitset":
        self._check_width(other)
        self.words &= ~other.words
        self._count = -1
        self._ones = None
        return self

    def __invert__(self) -> "Bitset":
        out = Bitset(self.nbits, ~self.words)
        if out.words.size:
            out.words[-1] &= np.uint64(_tail_mask(self.nbits))
        return out

    def intersection_update(self, other: "Bitset") -> bool:
        """In-place AND; returns True iff ``self`` shrank."""
        return self.intersection_update_delta(other) > 0

    def intersection_update_delta(self, other: "Bitset") -> int:
        """In-place AND; returns the number of bits removed.

        Single-pass: the popcount before comes from the cache (or one
        scan if stale) and the popcount after is computed once and
        cached, so callers never pay a second scan to learn the delta.
        """
        self._check_width(other)
        before = self.count()
        if before == 0:
            return 0
        self.words &= other.words
        after = int(np.bitwise_count(self.words).sum())
        self._count = after
        self._ones = None
        return before - after

    def clear(self) -> None:
        self.words.fill(0)
        self._count = 0
        self._ones = None

    def fill(self) -> None:
        self.words.fill(0xFFFFFFFFFFFFFFFF)
        if self.words.size:
            self.words[-1] = np.uint64(_tail_mask(self.nbits))
        self._count = self.nbits
        self._ones = None

    # -- iteration / conversion ------------------------------------------

    def iter_ones(self) -> np.ndarray:
        """Indices of set bits, ascending, as a read-only int64 array.

        Sparse-aware: only non-zero words are unpacked, so near-empty
        vectors over huge domains pay O(n/64) for the word scan plus
        O(64 * nonzero_words) — not O(n) — per call.  The result is
        cached until the next mutation (the kernel multiplies the same
        source vector against many matrices between updates) and is
        therefore marked non-writeable; copy before mutating.
        """
        if self._ones is not None:
            return self._ones
        nonzero = np.flatnonzero(self.words)
        if nonzero.size == 0:
            ones = np.empty(0, dtype=np.int64)
        else:
            bits = np.unpackbits(
                self.words[nonzero].view(np.uint8), bitorder=_UINT8_BITORDER
            ).reshape(nonzero.size, _WORD_BITS)
            word_idx, bit_idx = np.nonzero(bits)
            ones = nonzero[word_idx] * _WORD_BITS + bit_idx
        ones.setflags(write=False)
        self._ones = ones
        self._count = ones.size
        return ones

    def __iter__(self) -> Iterator[int]:
        return iter(self.iter_ones().tolist())

    def to_set(self) -> set[int]:
        return set(self.iter_ones().tolist())

    def to_frozenset(self) -> frozenset[int]:
        return frozenset(self.iter_ones().tolist())

    def first(self) -> int | None:
        """Smallest member, or None when empty."""
        nz = np.flatnonzero(self.words)
        if nz.size == 0:
            return None
        word_idx = int(nz[0])
        word = int(self.words[word_idx])
        return word_idx * _WORD_BITS + (word & -word).bit_length() - 1

    def __repr__(self) -> str:
        n = self.count()
        if n <= 12:
            members = ", ".join(str(i) for i in self)
            return f"Bitset({self.nbits}, {{{members}}})"
        return f"Bitset({self.nbits}, |.|={n})"
