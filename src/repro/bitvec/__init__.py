"""Bit-vector / bit-matrix kernel (paper Sect. 3.2).

Public surface:

* :class:`Bitset` — fixed-width mutable bitsets over uint64 words,
  with cached popcounts.
* :class:`AdjacencyMatrix` — one direction of a label's adjacency;
  non-empty rows packed into one contiguous ``(n_rows, n_words)``
  ``uint64`` block for vectorized products.
* :class:`LabelMatrixPair` — forward+backward matrices of one label.
* :func:`build_label_matrices` — construct all label matrices at once.
* :class:`BatchedBlockSet` — all matrices' packed rows concatenated
  into one block with per-label offsets (the ``batched`` kernel's
  whole-round product substrate).
* :func:`active_kernel` / :func:`set_kernel` / :func:`use_kernel` —
  the ``packed`` vs ``batched`` vs ``reference`` product-kernel
  switch (also settable via the ``REPRO_KERNEL`` environment
  variable).
"""

from repro.bitvec.bitset import Bitset
from repro.bitvec.kernel import (
    BATCHED,
    BatchedBlockSet,
    KERNELS,
    PACKED,
    REFERENCE,
    active_kernel,
    set_kernel,
    use_kernel,
)
from repro.bitvec.matrix import (
    AdjacencyMatrix,
    LabelMatrixPair,
    build_label_matrices,
)

__all__ = [
    "Bitset",
    "AdjacencyMatrix",
    "LabelMatrixPair",
    "build_label_matrices",
    "BatchedBlockSet",
    "KERNELS",
    "PACKED",
    "BATCHED",
    "REFERENCE",
    "active_kernel",
    "set_kernel",
    "use_kernel",
]
