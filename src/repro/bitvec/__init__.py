"""Bit-vector / bit-matrix kernel (paper Sect. 3.2).

Public surface:

* :class:`Bitset` — fixed-width mutable bitsets over uint64 words.
* :class:`AdjacencyMatrix` — one direction of a label's adjacency.
* :class:`LabelMatrixPair` — forward+backward matrices of one label.
* :func:`build_label_matrices` — construct all label matrices at once.
"""

from repro.bitvec.bitset import Bitset
from repro.bitvec.matrix import (
    AdjacencyMatrix,
    LabelMatrixPair,
    build_label_matrices,
)

__all__ = [
    "Bitset",
    "AdjacencyMatrix",
    "LabelMatrixPair",
    "build_label_matrices",
]
