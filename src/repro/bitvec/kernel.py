"""Kernel selection for the bit-matrix products (ablation switch).

Three implementations of the Eq. (9) bit-vector x bit-matrix products
coexist:

* ``"packed"`` (default) — every :class:`~repro.bitvec.matrix.AdjacencyMatrix`
  lays its non-empty rows out as one contiguous ``(n_rows, n_words)``
  ``uint64`` array; products are single NumPy reductions over the
  selected row block (``np.bitwise_or.reduce`` row-wise, a masked
  any-intersection test column-wise) — one kernel call per
  (label, direction) inequality.
* ``"batched"`` — the packed layout taken one level up: every
  (label, direction) matrix contributes its packed rows to one
  concatenated :class:`BatchedBlockSet` block with per-label offsets,
  and the SOI solver evaluates *a whole round of inequalities* as one
  gather plus one segmented reduce (see :mod:`repro.core.batched`),
  amortizing the per-call NumPy dispatch overhead that dominates
  small queries.  Individual products (pruning, reconstruction, the
  dynamic ordering) fall back to the packed implementation.
* ``"reference"`` — the seed implementation: one Python-level
  :class:`~repro.bitvec.bitset.Bitset` per row, products as Python
  loops.  Kept verbatim so ablation benches can quantify the
  vectorized kernels' win and property tests can assert bit-identical
  results.

The active kernel is read from the ``REPRO_KERNEL`` environment
variable at import time (unset means packed; any other value must
name a known kernel — typos raise, so an ablation never silently
measures the wrong implementation).  The variable is deprecated in
favour of ``repro.ExecutionProfile(kernel=...)`` / the ``--kernel``
CLI flag and warns once when set.  The kernel can be changed at
runtime with
:func:`set_kernel` or the :func:`use_kernel` context manager.  The
switch is consulted on every product call, so matrices built under
one kernel answer correctly under the other — the packed layout is an
*additional* index, not a replacement for the row dict.
"""

from __future__ import annotations

import contextlib
import os
from typing import Dict, Iterator, Tuple

import numpy as np

PACKED = "packed"
BATCHED = "batched"
REFERENCE = "reference"
KERNELS = (PACKED, BATCHED, REFERENCE)


def _kernel_from_env() -> str:
    value = os.environ.get("REPRO_KERNEL")
    if value is None or value == "":
        return PACKED
    if value not in KERNELS:
        raise ValueError(
            f"REPRO_KERNEL={value!r} is not a known kernel; "
            f"choose from {KERNELS}"
        )
    from repro._deprecation import deprecated_call

    deprecated_call(
        "env:REPRO_KERNEL",
        "the REPRO_KERNEL environment variable is deprecated; pass "
        "ExecutionProfile(kernel=...) or the --kernel CLI flag "
        "instead",
    )
    return value


_active = _kernel_from_env()


def active_kernel() -> str:
    """Name of the kernel the products currently run on."""
    return _active


def set_kernel(name: str) -> str:
    """Select a kernel; returns the previously active one."""
    global _active
    if name not in KERNELS:
        raise ValueError(f"unknown kernel {name!r}; choose from {KERNELS}")
    previous = _active
    _active = name
    return previous


@contextlib.contextmanager
def use_kernel(name: str) -> Iterator[str]:
    """Temporarily switch kernels (for tests and ablation benches)."""
    previous = set_kernel(name)
    try:
        yield name
    finally:
        set_kernel(previous)


class BatchEntry:
    """Where one (label, orientation) matrix lives inside the batch.

    ``offset`` is the matrix's first row in the concatenated block;
    ``row_index`` is *shared* with the source
    :class:`~repro.bitvec.matrix.AdjacencyMatrix` (node -> local
    packed row, ``-1`` for all-zero rows), so positions into the
    batch are ``row_index[nodes] + offset`` after filtering the
    ``-1`` sentinels.
    """

    __slots__ = ("offset", "n_rows", "row_index", "packed")

    def __init__(self, offset: int, row_index: np.ndarray,
                 packed: np.ndarray):
        self.offset = offset
        self.n_rows = packed.shape[0]
        self.row_index = row_index
        self.packed = packed  # identity anchor for staleness checks


class BatchedBlockSet:
    """All matrices' packed rows concatenated into one ``uint64`` block.

    The ``"batched"`` kernel's central data structure: instead of one
    ``(n_rows, n_words)`` block per (label, direction) matrix, every
    matrix's rows are appended into a single shared
    ``(total_rows, n_words)`` array, keyed by ``(label, orientation)``
    with per-entry row offsets (the ragged-row-count layout).  A whole
    round of Eq.-(9) products then needs just one fancy-index gather
    into this block plus one segmented reduce, regardless of how many
    labels the round touches.

    Entries are added lazily through :meth:`entry` — the first solver
    round that touches a label appends its rows, so a
    :class:`~repro.storage.tiered.TieredGraphView` promotion slots its
    label into the batch *without re-stacking* the labels already
    present (appends grow the block geometrically, amortized O(1) per
    row).  An entry whose source matrix was re-packed (edge added
    after packing) is detected by identity on the packed array and
    appended afresh; the stale region is left behind as slack.

    Stale slack is reclaimed through :meth:`invalidate` (drop one
    label's entries when the tiered store demotes it) followed by
    :meth:`compact` (rewrite the block with only live entries'
    segments).  Compaction moves rows, so callers must only compact
    at batch boundaries — never while gathered positions into the
    block are pending (the demotion pass compacts between queries,
    after every in-flight batch has flushed).
    """

    __slots__ = (
        "nbits", "n_words", "_block", "_used", "_entries", "_stale_rows",
    )

    def __init__(self, nbits: int):
        self.nbits = nbits
        # Matches bitset._word_count without importing it (kernel.py
        # must stay import-light: bitset/matrix import it back).
        self.n_words = (nbits + 63) // 64
        self._block = np.empty((0, self.n_words), dtype=np.uint64)
        self._used = 0
        self._entries: Dict[Tuple[str, str], BatchEntry] = {}
        self._stale_rows = 0

    @property
    def block(self) -> np.ndarray:
        """The concatenated row block (re-read after ``entry`` calls:
        appends may have grown it into a new allocation)."""
        return self._block

    @property
    def n_rows(self) -> int:
        """Rows currently occupied (including stale slack)."""
        return self._used

    @property
    def n_entries(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Bytes held by the concatenated block (capacity included)."""
        return self._block.nbytes

    @property
    def stale_rows(self) -> int:
        """Rows occupied by invalidated or superseded entries."""
        return self._stale_rows

    def _reserve(self, extra: int) -> None:
        need = self._used + extra
        capacity = self._block.shape[0]
        if need <= capacity:
            return
        grown = np.empty(
            (max(need, 2 * capacity, 256), self.n_words), dtype=np.uint64
        )
        grown[: self._used] = self._block[: self._used]
        self._block = grown

    def entry(self, label: str, orientation: str, matrix) -> BatchEntry:
        """The batch entry of ``matrix``, appending it on first touch.

        ``matrix`` is the :class:`AdjacencyMatrix` stored under
        ``(label, orientation)`` — packing it here is idempotent.  A
        matrix whose packed block changed since it was appended (or a
        brand-new matrix under a known key) replaces its entry.
        """
        key = (label, orientation)
        entry = self._entries.get(key)
        if entry is not None:
            if entry.packed is matrix._packed:
                return entry
            self._stale_rows += entry.n_rows
        matrix.pack()
        packed = matrix._packed
        self._reserve(packed.shape[0])
        offset = self._used
        self._block[offset : offset + packed.shape[0]] = packed
        self._used = offset + packed.shape[0]
        entry = BatchEntry(offset, matrix._row_index, packed)
        self._entries[key] = entry
        return entry

    def invalidate(self, label: str) -> int:
        """Drop a label's entries (both orientations); returns how many
        were present.

        The segments' rows stay in the block as stale slack, so
        positions already gathered from them remain valid until the
        next :meth:`compact` — demoting a label mid-solve is safe.
        Re-promoting the label later simply appends a fresh entry.
        """
        dropped = 0
        for orientation in ("forward", "backward"):
            entry = self._entries.pop((label, orientation), None)
            if entry is not None:
                self._stale_rows += entry.n_rows
                dropped += 1
        return dropped

    def compact(self) -> int:
        """Rewrite the block keeping only live entries; returns the
        bytes freed.

        Row offsets change, so this must only run when no gathered
        positions into the block are outstanding (between batches /
        queries).
        """
        before = self._block.nbytes
        live = sum(entry.n_rows for entry in self._entries.values())
        packed = np.empty((live, self.n_words), dtype=np.uint64)
        offset = 0
        for entry in self._entries.values():
            packed[offset:offset + entry.n_rows] = self._block[
                entry.offset:entry.offset + entry.n_rows
            ]
            entry.offset = offset
            offset += entry.n_rows
        self._block = packed
        self._used = live
        self._stale_rows = 0
        return before - packed.nbytes

    def __contains__(self, key: Tuple[str, str]) -> bool:
        return key in self._entries

    def __repr__(self) -> str:
        return (
            f"BatchedBlockSet(nbits={self.nbits}, "
            f"entries={len(self._entries)}, rows={self._used})"
        )
