"""Kernel selection for the bit-matrix products (ablation switch).

Two implementations of the Eq. (9) bit-vector x bit-matrix products
coexist:

* ``"packed"`` (default) — every :class:`~repro.bitvec.matrix.AdjacencyMatrix`
  lays its non-empty rows out as one contiguous ``(n_rows, n_words)``
  ``uint64`` array; products are single NumPy reductions over the
  selected row block (``np.bitwise_or.reduce`` row-wise, a masked
  any-intersection test column-wise).
* ``"reference"`` — the seed implementation: one Python-level
  :class:`~repro.bitvec.bitset.Bitset` per row, products as Python
  loops.  Kept verbatim so ablation benches can quantify the packed
  kernel's win and property tests can assert bit-identical results.

The active kernel is read from the ``REPRO_KERNEL`` environment
variable at import time (unset means packed; any other value must
name a known kernel — typos raise, so an ablation never silently
measures the wrong implementation).  The variable is deprecated in
favour of ``repro.ExecutionProfile(kernel=...)`` / the ``--kernel``
CLI flag and warns once when set.  The kernel can be changed at
runtime with
:func:`set_kernel` or the :func:`use_kernel` context manager.  The
switch is consulted on every product call, so matrices built under
one kernel answer correctly under the other — the packed layout is an
*additional* index, not a replacement for the row dict.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator

PACKED = "packed"
REFERENCE = "reference"
KERNELS = (PACKED, REFERENCE)


def _kernel_from_env() -> str:
    value = os.environ.get("REPRO_KERNEL")
    if value is None or value == "":
        return PACKED
    if value not in KERNELS:
        raise ValueError(
            f"REPRO_KERNEL={value!r} is not a known kernel; "
            f"choose from {KERNELS}"
        )
    from repro._deprecation import deprecated_call

    deprecated_call(
        "env:REPRO_KERNEL",
        "the REPRO_KERNEL environment variable is deprecated; pass "
        "ExecutionProfile(kernel=...) or the --kernel CLI flag "
        "instead",
    )
    return value


_active = _kernel_from_env()


def active_kernel() -> str:
    """Name of the kernel the products currently run on."""
    return _active


def set_kernel(name: str) -> str:
    """Select a kernel; returns the previously active one."""
    global _active
    if name not in KERNELS:
        raise ValueError(f"unknown kernel {name!r}; choose from {KERNELS}")
    previous = _active
    _active = name
    return previous


@contextlib.contextmanager
def use_kernel(name: str) -> Iterator[str]:
    """Temporarily switch kernels (for tests and ablation benches)."""
    previous = set_kernel(name)
    try:
        yield name
    finally:
        set_kernel(previous)
