"""Observability: query-lifecycle tracing, metrics, and profiling.

Zero-dependency (stdlib only) window into the engine:

* **Tracing** (:mod:`repro.obs.trace`) — a :class:`Tracer` producing
  nested, timestamped spans for every stage of a query's life
  (``parse``, ``advise``, ``prune`` per union branch, ``solve`` per
  segment with work counters attached, ``join``, ``promotion`` /
  ``demotion`` / ``retry``, ``checkpoint`` / ``resume``, ``degrade``),
  exportable as one-span-per-line JSON with OTel-compatible field
  names.  The module-level :data:`NULL_TRACER` is active by default;
  every hot-path hook is an inline ``if tracer.enabled`` guard, so the
  disabled path costs one attribute read (the perf-regression bench
  gate holds it to the untraced baseline).

* **Metrics** (:mod:`repro.obs.metrics`) — a process-wide
  :class:`MetricsRegistry` of counters and bounded histograms (query
  latency, solver rounds, promotions, demotions, retries,
  degradations, continuation resumes), snapshotable from
  ``Database.stats()`` and ``repro db info --json``.

* **Profiling** (:mod:`repro.obs.render`) — ``EXPLAIN ANALYZE``-style
  rendering of a finished trace: per-span self/total time, attached
  counters, and percent of wall clock (``repro db query --profile``).

* **Logging** (:mod:`repro.obs.logs`) — the ``logging.getLogger
  ("repro.*")`` hierarchy every engine diagnostic routes through,
  configured once from the ``REPRO_LOG`` environment variable.
"""

from repro.obs.logs import configure_from_env, get_logger
from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    registry,
)
from repro.obs.render import render_profile, trace_coverage, trace_summary
from repro.obs.trace import (
    NULL_TRACER,
    Span,
    Tracer,
    activate,
    current_tracer,
)

__all__ = [
    "Tracer",
    "Span",
    "NULL_TRACER",
    "activate",
    "current_tracer",
    "MetricsRegistry",
    "Counter",
    "Histogram",
    "registry",
    "render_profile",
    "trace_coverage",
    "trace_summary",
    "get_logger",
    "configure_from_env",
]
