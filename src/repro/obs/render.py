"""``EXPLAIN ANALYZE``-style rendering of a finished trace.

:func:`render_profile` draws the span tree of a
:class:`~repro.obs.trace.Tracer` with per-span total time, self time
(total minus the children's totals), percent of the root's wall clock,
and the attached work counters — what ``repro db query --profile``
prints.  :func:`trace_coverage` computes how much of the root span's
wall time its direct children account for (the accounting-completeness
figure the acceptance gate asserts at >= 95%).
"""

from __future__ import annotations

from typing import Dict, List

from repro.obs.trace import Span, Tracer

__all__ = ["render_profile", "trace_coverage", "trace_summary"]

#: Attributes rendered inline after the span name, in this order.
_INLINE_ATTRS = (
    "branch", "label", "mode", "kernel", "tier",
    "rounds", "evaluations", "updates", "bits_removed",
    "triples_after", "solutions", "bytes", "attempt",
)


def _by_parent(tracer: Tracer) -> Dict[object, List[Span]]:
    children: Dict[object, List[Span]] = {}
    for span in tracer.spans:
        children.setdefault(span.parent_id, []).append(span)
    return children


def _label(span: Span) -> str:
    attrs = span.attributes
    inline = [
        f"{key}={attrs[key]}" for key in _INLINE_ATTRS if key in attrs
    ]
    extra = [
        f"{key}={value}" for key, value in sorted(attrs.items())
        if key not in _INLINE_ATTRS
    ]
    rendered = " ".join(inline + extra)
    return f"{span.name} [{rendered}]" if rendered else span.name


def render_profile(tracer: Tracer) -> str:
    """The span forest as an ``EXPLAIN ANALYZE``-style tree.

    Each line shows the span (with its attributes), its total wall
    time, its self time, and its share of the root span's wall clock.
    Zero-duration events render without timings.
    """
    children = _by_parent(tracer)
    roots = children.get(None, [])
    lines: List[str] = []

    def total_of(span: Span) -> float:
        return span.duration

    def walk(span: Span, prefix: str, is_last: bool, root_total: float):
        kids = children.get(span.span_id, [])
        connector = "" if prefix == "" and not lines else (
            "└─ " if is_last else "├─ "
        )
        total = total_of(span)
        self_time = total - sum(total_of(k) for k in kids)
        if total == 0.0 and not kids:
            timing = "(event)"
        else:
            share = (
                f"{100.0 * total / root_total:5.1f}%"
                if root_total > 0 else "    -"
            )
            timing = (
                f"total {1000.0 * total:9.3f}ms  "
                f"self {1000.0 * max(self_time, 0.0):9.3f}ms  {share}"
            )
        lines.append(f"{prefix}{connector}{_label(span)}  {timing}")
        child_prefix = prefix + (
            "" if prefix == "" and connector == "" else
            ("   " if is_last else "│  ")
        )
        for index, kid in enumerate(kids):
            walk(kid, child_prefix, index == len(kids) - 1, root_total)

    for root in roots:
        walk(root, "", True, total_of(root))
    return "\n".join(lines)


def trace_coverage(tracer: Tracer) -> float:
    """Fraction of the first root span's wall time accounted for by
    its direct children (1.0 when the root took no measurable time).

    The profiling contract is that the top-level stage spans (parse,
    advise, prune, join, ...) explain where a query's wall clock went;
    this is the number the acceptance gate holds at >= 0.95.
    """
    roots = [s for s in tracer.spans if s.parent_id is None]
    if not roots:
        return 0.0
    root = roots[0]
    total = root.duration
    if total <= 0.0:
        return 1.0
    covered = sum(
        span.duration for span in tracer.spans
        if span.parent_id == root.span_id
    )
    return min(covered / total, 1.0)


def trace_summary(tracer: Tracer) -> Dict[str, object]:
    """Compact JSON-friendly digest of a trace: per-name span counts
    and total milliseconds, plus root wall time and child coverage
    (the ``--stats-json --profile`` trace block)."""
    by_name: Dict[str, Dict[str, float]] = {}
    for span in tracer.spans:
        entry = by_name.setdefault(
            span.name, {"count": 0, "total_ms": 0.0}
        )
        entry["count"] += 1
        entry["total_ms"] += 1000.0 * span.duration
    roots = [s for s in tracer.spans if s.parent_id is None]
    return {
        "spans": {
            name: {
                "count": int(entry["count"]),
                "total_ms": entry["total_ms"],
            }
            for name, entry in sorted(by_name.items())
        },
        "wall_ms": 1000.0 * sum(root.duration for root in roots),
        "coverage": trace_coverage(tracer),
    }
