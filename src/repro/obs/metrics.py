"""Process-wide counters and bounded histograms.

A :class:`MetricsRegistry` holds named :class:`Counter` and
:class:`Histogram` instruments, created on first use.  The process
default (:func:`registry`) accumulates across every
:class:`~repro.api.database.Database` session — the per-query
statistics surface a long-lived server aggregates over many clients —
and is snapshotable as one flat JSON-friendly dict from
``Database.stats()`` and ``repro db info --json``.

Histograms are **bounded**: a fixed bucket-boundary list fixed at
creation (no per-observation allocation, no unbounded reservoir), plus
running count/sum/min/max.  The default boundaries cover query
latencies from sub-millisecond to ten seconds; integer-ish series
(solver rounds) pass their own.
"""

from __future__ import annotations

import bisect
import os
import threading
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Histogram", "MetricsRegistry", "registry"]

#: Default bucket upper bounds (ms) for latency-shaped histograms.
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

#: Default bucket upper bounds for small-count series (rounds, ...).
COUNT_BUCKETS: Tuple[float, ...] = (
    1, 2, 3, 4, 5, 8, 12, 16, 24, 32, 64, 128, 256,
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self._value})"


class Histogram:
    """Fixed-bucket distribution with running count/sum/min/max.

    ``boundaries`` are inclusive upper bounds; one overflow bucket
    catches everything above the last boundary, so memory is constant
    no matter how many observations land.
    """

    __slots__ = (
        "name", "boundaries", "bucket_counts",
        "count", "sum", "min", "max",
    )

    def __init__(self, name: str, boundaries: Sequence[float]):
        if not boundaries or list(boundaries) != sorted(boundaries):
            raise ValueError(
                f"histogram {name!r} needs ascending bucket boundaries"
            )
        self.name = name
        self.boundaries: Tuple[float, ...] = tuple(boundaries)
        self.bucket_counts: List[int] = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }
        if self.count:
            out["buckets"] = {
                (f"le_{bound:g}" if i < len(self.boundaries) else "inf"):
                    n
                for i, (bound, n) in enumerate(
                    zip(self.boundaries + (float("inf"),),
                        self.bucket_counts)
                )
                if n
            }
        return out

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, count={self.count}, "
            f"sum={self.sum:g})"
        )


class MetricsRegistry:
    """Named instruments, created on first use.

    Re-requesting a name returns the same instrument; requesting an
    existing name as the wrong kind raises.  ``snapshot()`` is a flat
    dict (counter name -> int, histogram name -> summary dict) stable
    under JSON round-trips.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name in self._histograms:
                raise ValueError(f"{name!r} is already a histogram")
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def histogram(
        self, name: str, boundaries: Sequence[float] = LATENCY_BUCKETS_MS
    ) -> Histogram:
        with self._lock:
            if name in self._counters:
                raise ValueError(f"{name!r} is already a counter")
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    name, boundaries
                )
            return instrument

    def snapshot(self) -> Dict[str, object]:
        """Flat JSON-friendly view of every instrument (sorted)."""
        with self._lock:
            out: Dict[str, object] = {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            }
            out.update(
                (name, histogram.to_dict())
                for name, histogram in sorted(self._histograms.items())
            )
        return out

    def reset(self) -> None:
        """Drop every instrument (test isolation helper)."""
        with self._lock:
            self._counters.clear()
            self._histograms.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._histograms)} histograms)"
        )


#: The process-wide registry all engine hooks record into.
_REGISTRY = MetricsRegistry()


def _registry_after_fork() -> None:
    # fork() can land while another thread holds the registry lock;
    # the child inherits it locked with no owner to release it, and
    # the first metrics hook in the child deadlocks.  Locks are not
    # fork-inheritable state — reinitialize.  Instrument values are
    # plain ints/lists and copy over consistently enough for a
    # monitoring surface.
    _REGISTRY._lock = threading.Lock()


os.register_at_fork(after_in_child=_registry_after_fork)


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY
