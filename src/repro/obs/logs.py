"""The ``repro.*`` logger hierarchy and the ``REPRO_LOG`` toggle.

Every engine diagnostic (deprecation shims, promotion-retry notices,
kernel-degradation records, corruption detections) routes through a
namespaced ``logging.getLogger("repro.<area>")`` logger obtained via
:func:`get_logger` — so embedding applications control engine noise
with the standard ``logging`` machinery, per subsystem.

By default the hierarchy stays silent (the root ``repro`` logger gets
a :class:`logging.NullHandler`, nothing propagates surprises to a
bare root logger).  Setting the ``REPRO_LOG`` environment variable
attaches a stderr handler at the named level::

    REPRO_LOG=debug   python -m repro db query ...   # everything
    REPRO_LOG=warning python app.py                  # notices only

The value is a standard level name (``debug`` / ``info`` / ``warning``
/ ``error`` / ``critical``), case-insensitive; unknown values fall
back to ``info``.  Configuration happens once, on the first
:func:`get_logger` call (or explicitly via
:func:`configure_from_env`); applications that configured ``logging``
themselves are left alone — the env handler is only ever added to the
``repro`` logger, never to the root.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional

__all__ = ["get_logger", "configure_from_env"]

ROOT_LOGGER_NAME = "repro"
ENV_VAR = "REPRO_LOG"

_configured = False


def configure_from_env(value: Optional[str] = None) -> logging.Logger:
    """Apply the ``REPRO_LOG`` policy to the ``repro`` logger (once).

    ``value`` overrides the environment (tests); passing it re-applies
    even if configuration already ran.  Returns the root ``repro``
    logger.
    """
    global _configured
    root = logging.getLogger(ROOT_LOGGER_NAME)
    if _configured and value is None:
        return root
    _configured = True
    if value is None:
        value = os.environ.get(ENV_VAR)
    if not root.handlers:
        # Silence-by-default: without a NullHandler, a warning-level
        # record would trigger logging's "no handlers" lastResort
        # stderr path even when the embedder never opted in.
        root.addHandler(logging.NullHandler())
    if not value:
        return root
    level = getattr(logging, value.strip().upper(), None)
    if not isinstance(level, int):
        level = logging.INFO
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname)s %(name)s: %(message)s")
    )
    handler.setLevel(level)
    root.addHandler(handler)
    root.setLevel(level)
    return root


def get_logger(area: str) -> logging.Logger:
    """The ``repro.<area>`` logger (``repro.storage``, ``repro.core``,
    ...), with the ``REPRO_LOG`` policy applied on first use.  Passing
    a name already under ``repro`` uses it as-is."""
    configure_from_env()
    if area == ROOT_LOGGER_NAME or area.startswith(
        ROOT_LOGGER_NAME + "."
    ):
        name = area
    else:
        name = f"{ROOT_LOGGER_NAME}.{area}"
    return logging.getLogger(name)
