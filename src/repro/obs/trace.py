"""Nested, timestamped spans over a query's life.

A :class:`Tracer` records a tree of :class:`Span` objects.  Spans nest
via a stack (``with tracer.span("prune"):`` makes every span opened
inside it a child), carry free-form attributes (work counters, labels,
byte counts), and export as one-JSON-object-per-line text whose field
names follow the OpenTelemetry span schema (``name``, ``trace_id``,
``span_id``, ``parent_span_id``, ``start_time_unix_nano``,
``end_time_unix_nano``, ``attributes``), so any OTel-speaking viewer
ingests the file directly.

Clocks are injectable: ``clock`` is a monotonic seconds source used
for all durations (tests drive it deterministically), ``epoch_ns`` the
wall-clock origin the monotonic values are rebased onto for export.

The **disabled path is a no-op by construction**: the module-level
:data:`NULL_TRACER` answers ``enabled = False`` and every engine hook
is written as ``if tracer.enabled: ...`` — one attribute read, no
allocation, no clock call.  :func:`activate` swaps the current tracer
for the duration of a ``with`` block; :func:`current_tracer` is the
single global the hooks consult.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "activate",
    "current_tracer",
]


class Span:
    """One timed operation (or point event) in a trace.

    ``start`` / ``end`` are monotonic seconds from the tracer's clock;
    ``end`` is ``None`` while the span is open.  Use as a context
    manager, or call :meth:`finish` explicitly.
    """

    __slots__ = (
        "tracer", "name", "span_id", "parent_id",
        "start", "end", "attributes",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        start: float,
        attributes: Dict[str, object],
    ):
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.attributes = attributes

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def set_attributes(self, **attrs: object) -> None:
        self.attributes.update(attrs)

    def finish(self) -> None:
        """Close the span (idempotent) and pop it off the stack."""
        if self.end is None:
            self.end = self.tracer._clock()
            self.tracer._pop(self)

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        self.finish()

    def to_dict(self) -> Dict[str, object]:
        """OTel-compatible flat form (times rebased to unix nanos)."""
        epoch = self.tracer.epoch_ns
        start_ns = epoch + int(self.start * 1e9)
        end_ns = (
            start_ns if self.end is None
            else epoch + int(self.end * 1e9)
        )
        out: Dict[str, object] = {
            "name": self.name,
            "trace_id": self.tracer.trace_id,
            "span_id": f"{self.span_id:016x}",
            "parent_span_id": (
                "" if self.parent_id is None
                else f"{self.parent_id:016x}"
            ),
            "start_time_unix_nano": start_ns,
            "end_time_unix_nano": end_ns,
        }
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        return out

    def __repr__(self) -> str:
        state = (
            "open" if self.end is None
            else f"{1000.0 * self.duration:.3f}ms"
        )
        return f"Span({self.name!r}, {state}, attrs={self.attributes})"


class Tracer:
    """Collects one trace: a forest of spans in start order.

    ``enabled`` is checked inline by every engine hook; a regular
    tracer answers True.  ``clock`` must be monotonic (seconds);
    ``epoch_ns`` anchors exported timestamps (defaults to the wall
    clock at construction, rebased so span 0 starts "now").
    """

    enabled = True

    def __init__(self, clock=time.perf_counter, epoch_ns: Optional[int] = None):
        self._clock = clock
        base = clock()
        if epoch_ns is None:
            epoch_ns = int(time.time() * 1e9) - int(base * 1e9)
        self.epoch_ns = epoch_ns
        #: Every span ever started, in start order (open ones included).
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1
        self.trace_id = f"{id(self) & 0xFFFFFFFF:032x}"

    # -- recording --------------------------------------------------------

    def span(self, name: str, **attributes: object) -> Span:
        """Open a nested span; close it via ``with`` or ``finish()``."""
        span = Span(
            self, name, self._next_id,
            self._stack[-1].span_id if self._stack else None,
            self._clock(), attributes,
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def event(self, name: str, **attributes: object) -> Span:
        """A zero-duration span (a point event): opened and closed at
        the same instant, parented to the innermost open span."""
        span = Span(
            self, name, self._next_id,
            self._stack[-1].span_id if self._stack else None,
            self._clock(), attributes,
        )
        self._next_id += 1
        span.end = span.start
        self.spans.append(span)
        return span

    def _pop(self, span: Span) -> None:
        # Close any abandoned inner spans too (an exception may have
        # unwound past them), so the stack never corrupts nesting for
        # later spans.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                return
            if top.end is None:
                top.end = span.end

    # -- structure --------------------------------------------------------

    def roots(self) -> List[Span]:
        """Top-level spans (no parent), in start order."""
        return [s for s in self.spans if s.parent_id is None]

    def children(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def find(self, name: str) -> List[Span]:
        """Every span with this name, in start order."""
        return [s for s in self.spans if s.name == name]

    # -- export -----------------------------------------------------------

    def to_dicts(self) -> Iterator[Dict[str, object]]:
        return (span.to_dict() for span in self.spans)

    def to_jsonl(self) -> str:
        """One span per line, OTel field names, start order."""
        return "".join(
            json.dumps(d, sort_keys=True, default=str) + "\n"
            for d in self.to_dicts()
        )

    def write_jsonl(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.to_jsonl())

    def __repr__(self) -> str:
        return (
            f"Tracer({len(self.spans)} spans, "
            f"{len(self._stack)} open)"
        )


class NullTracer:
    """The disabled tracer: every operation is an inert no-op.

    Hot paths guard with ``if tracer.enabled`` and never call these;
    the methods exist so *cold* call sites may skip the guard.
    """

    enabled = False

    _NOOP_SPAN = None  # set after class body

    def span(self, name: str, **attributes: object) -> "_NoopSpan":
        return _NOOP_SPAN

    def event(self, name: str, **attributes: object) -> None:
        return None

    def __repr__(self) -> str:
        return "NullTracer()"


class _NoopSpan:
    """Reusable inert span for :class:`NullTracer.span` callers."""

    __slots__ = ()

    def set_attribute(self, key: str, value: object) -> None:
        return None

    def set_attributes(self, **attrs: object) -> None:
        return None

    def finish(self) -> None:
        return None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NOOP_SPAN = _NoopSpan()
NullTracer._NOOP_SPAN = _NOOP_SPAN

#: The process-default tracer every engine hook consults.
NULL_TRACER = NullTracer()

_current = NULL_TRACER


def current_tracer():
    """The tracer engine hooks record into (NULL_TRACER by default)."""
    return _current


class _Activation:
    """Context manager swapping the current tracer (re-entrant)."""

    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer):
        self._tracer = tracer
        self._previous = None

    def __enter__(self):
        global _current
        self._previous = _current
        _current = self._tracer
        return self._tracer

    def __exit__(self, *exc) -> None:
        global _current
        _current = self._previous


def activate(tracer) -> _Activation:
    """``with activate(tracer):`` routes engine hooks into ``tracer``
    for the duration of the block (restores the previous one after)."""
    return _Activation(tracer)
