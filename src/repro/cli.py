"""Command-line interface: ``python -m repro <command>``.

Every command sits on the :class:`repro.Database` session façade —
the CLI builds a database (from N-Triples text, a snapshot, or a
generator), an :class:`repro.ExecutionProfile` (engine profile,
pruning mode, product kernel), and calls the façade.

Commands:

* ``generate`` — write a synthetic workload to an N-Triples file::

      python -m repro generate lubm --out lubm.nt --universities 4
      python -m repro generate dbpedia --out dbp.nt --scale 2

* ``query`` — evaluate a SPARQL query over an N-Triples file::

      python -m repro query data.nt "SELECT * WHERE { ?s p ?o . }"
      python -m repro query data.nt query.rq --mode pruned
      python -m repro query data.nt query.rq --prune --engine rdfox-like
      python -m repro query data.nt query.rq --profile --trace-out t.jsonl

* ``simulate`` — print the system of inequalities and the largest
  dual simulation of a query (the Sect. 3/4 machinery)::

      python -m repro simulate data.nt "SELECT * WHERE { ?s p ?o . }"

* ``db`` — the on-disk snapshot store: build once, open many::

      python -m repro db build data.nt -o data.snap
      python -m repro db info data.snap
      python -m repro db verify data.snap
      python -m repro db compact data.snap -o new.snap --add delta.nt
      python -m repro db query data.snap query.rq --mode auto
      python -m repro db query data.snap query.rq --quantum 50 --token-out t.txt
      python -m repro db query data.snap --resume @t.txt
      python -m repro db query data.snap query.rq --profile --stats-json

* ``bench`` — regenerate one of the paper's tables::

      python -m repro bench table2
      python -m repro bench kernels --compare BENCH_PR1.json
      python -m repro bench table3 --kernel reference
"""

import argparse
import contextlib
import sys
import threading
from pathlib import Path
from typing import List, Optional

from repro.api import Database, ExecutionProfile, PRUNING_MODES
from repro.bitvec.kernel import KERNELS, use_kernel
from repro.errors import DeadlineExceededError, ReproError
from repro.graph.io import save_ntriples
from repro.store import PROFILES
from repro.workloads import generate_dbpedia, generate_lubm

BENCH_TABLES = (
    "table2", "table3", "table4", "table5", "iterations", "hypothesis",
    "kernels", "storage", "updates",
)

#: Exit code of ``bench kernels --compare`` when a query regressed.
EXIT_REGRESSION = 3

#: Exit code when a query blows its ``--deadline`` wall-clock bound.
EXIT_DEADLINE = 4


def _add_execution_flags(
    parser, modes: bool = True, default_mode: str = "full"
) -> None:
    """The flags every query-running command shares."""
    parser.add_argument("--engine", choices=sorted(PROFILES),
                        default="virtuoso-like",
                        help="join-engine profile")
    parser.add_argument("--kernel", choices=KERNELS, default=None,
                        help="bit-matrix product kernel (default: "
                             "process default; REPRO_KERNEL env var "
                             "is deprecated)")
    parser.add_argument("--workers", type=int, default=None,
                        help="parallel evaluation width for the "
                             "batched kernel (1 = serial; answers are "
                             "bit-identical at any width)")
    parser.add_argument("--worker-mode", choices=("threads", "fork"),
                        default=None, dest="worker_mode",
                        help="parallel backend: threads (default) or "
                             "fork (snapshot-backed sessions only; "
                             "workers mmap disjoint shards)")
    if modes:
        parser.add_argument("--mode", choices=PRUNING_MODES, default=None,
                            help="query execution mode: always prune, "
                                 "never prune, or let the statistics "
                                 "advisor decide "
                                 f"(default: {default_mode})")


def _add_profiling_flags(parser) -> None:
    """The observability flags of the query-running commands."""
    parser.add_argument("--profile", action="store_true",
                        help="trace the query and print an EXPLAIN "
                             "ANALYZE-style span tree (per-stage total/"
                             "self time and work counters)")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="export the query's trace as OTel-"
                             "compatible JSONL (one span per line); "
                             "implies tracing")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fast dual simulation processing of graph database "
                    "queries (Mennicke et al., ICDE 2019) - reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic workload")
    gen.add_argument("dataset", choices=("lubm", "dbpedia"))
    gen.add_argument("--out", required=True, help="output .nt path")
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--universities", type=int, default=4,
                     help="LUBM: number of universities")
    gen.add_argument("--scale", type=int, default=1,
                     help="DBpedia: entity-scale multiplier")
    gen.add_argument("--padding", type=int, default=3,
                     help="DBpedia: unrelated-domain multiplier")

    qry = sub.add_parser("query", help="evaluate a SPARQL query")
    qry.add_argument("data", help="N-Triples file")
    qry.add_argument("query", help="SPARQL text or a .rq file path")
    qry.add_argument("--prune", action="store_true",
                     help="run the full pruning experiment (full vs "
                          "pruned evaluation) and report both timings")
    qry.add_argument("--limit", type=int, default=20,
                     help="max solutions to print (0 = all)")
    _add_execution_flags(qry)
    _add_profiling_flags(qry)

    sim = sub.add_parser("simulate", help="show SOI + largest dual simulation")
    sim.add_argument("data", help="N-Triples file")
    sim.add_argument("query", help="SPARQL text or a .rq file path")
    sim.add_argument("--limit", type=int, default=10,
                     help="max candidates to print per variable (0 = all)")
    sim.add_argument("--kernel", choices=KERNELS, default=None,
                     help="bit-matrix product kernel")

    ask = sub.add_parser(
        "ask", help="ASK a query (with the dual simulation fast path)"
    )
    ask.add_argument("data", help="N-Triples file")
    ask.add_argument("query", help="SPARQL ASK text or a .rq file path")
    _add_execution_flags(ask, modes=False)

    explain = sub.add_parser("explain", help="show the evaluation plan")
    explain.add_argument("data", help="N-Triples file")
    explain.add_argument("query", help="SPARQL text or a .rq file path")
    _add_execution_flags(explain, default_mode="auto")

    bench = sub.add_parser("bench", help="regenerate a paper table")
    bench.add_argument("table", choices=BENCH_TABLES)
    bench.add_argument("--json", dest="json_out", default=None,
                       help="kernels/storage: also write machine-readable "
                            "results (e.g. BENCH_PR1.json)")
    bench.add_argument("--repeats", type=int, default=None,
                       help="kernels only: timed repetitions per query "
                            "(default 3)")
    bench.add_argument("--compare", dest="compare_to", default=None,
                       help="kernels only: diff against a previous "
                            "repro-bench/v1 JSON baseline; exits "
                            f"{EXIT_REGRESSION} on a >20%% regression")
    bench.add_argument("--kernel", choices=KERNELS, default=None,
                       help="run the table under this product kernel "
                            "(for `kernels`: measure only this "
                            "kernel; incompatible with --compare)")
    bench.add_argument("--workers", type=int, default=None, metavar="N",
                       help="kernels only: also time each batched-"
                            "kernel solve under N thread workers and "
                            "report the scaling column")

    db = sub.add_parser("db", help="on-disk snapshot store")
    db_sub = db.add_subparsers(dest="db_command", required=True)

    build = db_sub.add_parser(
        "build", help="serialize an N-Triples file into a snapshot"
    )
    build.add_argument("data", help="N-Triples input file")
    build.add_argument("-o", "--out", required=True,
                       help="snapshot output path")
    build.add_argument("--cold-threshold", type=float, default=None,
                       help="store a label gap-encoded (cold) when its "
                            "encoded bytes are below this fraction of "
                            "its dense bytes (default 1.0)")
    build.add_argument("--shards", type=int, default=None, metavar="N",
                       help="write the v3 sharded layout: block "
                            "payloads split across N shard files "
                            "keyed by label hash (enables disjoint "
                            "mmaps for --worker-mode fork)")

    info = db_sub.add_parser("info", help="describe a snapshot file")
    info.add_argument("snapshot", help="snapshot path")
    info.add_argument("--json", dest="json_out", action="store_true",
                      help="print machine-readable JSON instead")

    verify = db_sub.add_parser(
        "verify", help="check every snapshot section's integrity"
    )
    verify.add_argument("snapshot", help="snapshot path")
    verify.add_argument("--json", dest="json_out", action="store_true",
                        help="print machine-readable JSON instead")

    compact = db_sub.add_parser(
        "compact",
        help="apply N-Triples deltas to a snapshot and write the "
             "compacted result as a fresh snapshot",
    )
    compact.add_argument("snapshot", help="snapshot path to edit")
    compact.add_argument("-o", "--out", required=True,
                         help="compacted snapshot output path")
    compact.add_argument("--add", default=None, metavar="FILE.nt",
                         help="N-Triples file of triples to assert")
    compact.add_argument("--retract", default=None, metavar="FILE.nt",
                         help="N-Triples file of triples to retract")
    compact.add_argument("--cold-threshold", type=float, default=None,
                         help="as in `db build`")

    dbq = db_sub.add_parser(
        "query", help="evaluate a SPARQL query over a snapshot"
    )
    dbq.add_argument("snapshot", help="snapshot path")
    dbq.add_argument("query", nargs="?", default=None,
                     help="SPARQL text or a .rq file path (omit when "
                          "resuming with --resume)")
    dbq.add_argument("--quantum", type=float, default=None, metavar="MS",
                     help="preemptable execution: suspend the "
                          "dual-simulation stage after MS milliseconds "
                          "and print a continuation token (0 = "
                          "single-step)")
    dbq.add_argument("--deadline", type=float, default=None, metavar="MS",
                     help="hard wall-clock bound on the dual-simulation "
                          f"stage; exceeding it exits {EXIT_DEADLINE}")
    dbq.add_argument("--resume", default=None, metavar="TOKEN",
                     help="resume a suspended query from a continuation "
                          "token (@file reads the token from a file)")
    dbq.add_argument("--token-out", default=None, metavar="PATH",
                     help="when the query suspends, write the "
                          "continuation token to PATH instead of stdout")
    dbq.add_argument("--prune", action="store_true",
                     help="run the full pruning experiment (full vs "
                          "pruned evaluation) and report both timings")
    dbq.add_argument("--limit", type=int, default=20,
                     help="max solutions to print (0 = all)")
    dbq.add_argument("--budget", type=int, default=None,
                     help="hard residency budget in bytes: after the "
                          "query, least-recently-touched labels are "
                          "demoted back to disk until resident packed "
                          "bytes fit")
    dbq.add_argument("--stats-json", action="store_true",
                     help="after the query, print the full session "
                          "stats (residency, degradations, process "
                          "metrics — plus a trace summary under "
                          "--profile) as JSON")
    _add_execution_flags(dbq)
    _add_profiling_flags(dbq)

    serve = sub.add_parser(
        "serve",
        help="serve a snapshot over HTTP with preemption-fair "
             "round-robin query scheduling",
    )
    serve.add_argument("data", help="snapshot path (or an .nt file)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080,
                       help="bind port (0 = ephemeral; default 8080)")
    serve.add_argument("--quantum", type=float, default=None, metavar="MS",
                       help="server-enforced time quantum per request "
                            "slice; over-quantum queries answer HTTP "
                            "206 with a continuation token (0 = "
                            "single-step; default 100)")
    serve.add_argument("--deadline", type=float, default=None, metavar="MS",
                       help="default hard wall-clock bound per query "
                            "(requests may tighten it with their own "
                            "deadline_ms)")
    serve.add_argument("--max-body", type=int, default=None, metavar="BYTES",
                       help="largest accepted request body "
                            "(default 1 MiB; larger bodies answer 413)")
    serve.add_argument("--budget", type=int, default=None,
                       help="residency budget in bytes for the served "
                            "snapshot")
    serve.add_argument("--trace-out", default=None, metavar="PATH",
                       help="append every request's trace as OTel-"
                            "compatible JSONL (one span per line)")
    _add_execution_flags(serve, default_mode="auto")

    return parser


def _read_query(argument: str) -> str:
    path = Path(argument)
    if argument.endswith(".rq") and path.exists():
        return path.read_text()
    return argument


def _execution_profile(args, default_mode: str = "full") -> ExecutionProfile:
    """Build the session profile from the shared CLI flags.

    Starts from the profile's own defaults and folds in only the
    flags the user actually set (:meth:`ExecutionProfile.replace`),
    so default values live in exactly one place — adding a profile
    field no longer means threading another ``getattr`` default
    through here.
    """
    overrides = {"pruning": getattr(args, "mode", None) or default_mode}
    for flag, field in (
        ("engine", "engine"),
        ("kernel", "kernel"),
        ("budget", "residency_budget"),
        ("quantum", "time_quantum_ms"),
        ("deadline", "deadline_ms"),
        ("workers", "workers"),
        ("worker_mode", "worker_mode"),
    ):
        value = getattr(args, flag, None)
        if value is not None:
            overrides[field] = value
    return ExecutionProfile().replace(**overrides)


def _read_token(argument: str) -> str:
    """A continuation token argument: literal, or ``@path`` to a file."""
    if argument.startswith("@"):
        return Path(argument[1:]).read_text().strip()
    return argument.strip()


def cmd_generate(args, out) -> int:
    if args.dataset == "lubm":
        db = generate_lubm(n_universities=args.universities, seed=args.seed)
    else:
        db = generate_dbpedia(
            scale=args.scale, seed=args.seed, padding=args.padding
        )
    save_ntriples(db, args.out)
    print(
        f"wrote {db.n_triples} triples "
        f"({db.n_nodes} nodes, {len(db.labels)} predicates) to {args.out}",
        file=out,
    )
    return 0


def _emit_suspension(result, args, out) -> int:
    """Print (or file away) a suspended query's continuation token."""
    token_out = getattr(args, "token_out", None)
    print(
        "suspended: quantum expired before the dual-simulation stage "
        "finished; resume with --resume",
        file=out,
    )
    if token_out:
        Path(token_out).write_text(result.continuation + "\n")
        print(f"continuation token written to {token_out}", file=out)
    else:
        print(result.continuation, file=out)
    return 0


def _want_trace(args) -> Optional[bool]:
    """``--profile``/``--trace-out`` imply tracing (None = profile
    default, so a ``trace=True`` ExecutionProfile still traces)."""
    wanted = bool(
        getattr(args, "profile", False)
        or getattr(args, "trace_out", None)
    )
    return True if wanted else None


def _emit_trace(result, args, out) -> None:
    """Render/export a traced query per the profiling flags."""
    if getattr(result, "trace", None) is None:
        return
    if getattr(args, "profile", False):
        from repro.obs import render_profile

        print(render_profile(result.trace), file=out)
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        result.trace.write_jsonl(trace_out)
        print(f"trace written to {trace_out}", file=out)


def _emit_stats_json(db, result, args, out) -> None:
    """``--stats-json``: the full session stats (plus a trace summary
    when the query was traced) as one JSON document."""
    if not getattr(args, "stats_json", False):
        return
    import json as json_module

    stats = db.stats().to_dict()
    if result is not None and getattr(result, "trace", None) is not None:
        from repro.obs.render import trace_summary

        stats["trace"] = trace_summary(result.trace)
    print(json_module.dumps(stats, indent=2), file=out)


def _run_session_query(db: Database, args, out) -> int:
    """Shared query flow of ``query`` and ``db query``."""
    trace = _want_trace(args)
    resume_token = getattr(args, "resume", None)
    if resume_token is not None:
        result = db.resume(_read_token(resume_token), trace=trace)
        if not result.complete:
            code = _emit_suspension(result, args, out)
        else:
            print("resumed to completion", file=out)
            _print_result(result, args, out)
            code = 0
        _emit_trace(result, args, out)
        _emit_stats_json(db, result, args, out)
        return code
    if args.query is None:
        raise ReproError("a query is required unless --resume is given")
    query = _read_query(args.query)
    if args.prune:
        report = db.benchmark(query, name="query")
        print(
            f"pruning: {report.triples_total} -> "
            f"{report.triples_after_pruning} triples "
            f"({100 * report.prune_ratio:.1f}% pruned) "
            f"in {report.t_simulation:.4f}s",
            file=out,
        )
        print(
            f"engine: full {report.t_db_full:.4f}s, "
            f"pruned {report.t_db_pruned:.4f}s, "
            f"results equal: {report.results_equal}",
            file=out,
        )
    result = db.query(query, trace=trace)
    if not result.complete:
        code = _emit_suspension(result, args, out)
    else:
        _print_result(result, args, out)
        code = 0
    _emit_trace(result, args, out)
    _emit_stats_json(db, result, args, out)
    return code


def _print_result(result, args, out) -> None:
    if result.advised:
        print(f"mode: auto -> {result.mode}", file=out)
    if result.mode == "pruned" and result.pruning is not None and not args.prune:
        summary = result.pruning
        print(
            f"pruning: {summary.triples_total} -> "
            f"{summary.triples_after} triples "
            f"({100 * summary.ratio:.1f}% pruned) "
            f"in {summary.t_simulation:.4f}s",
            file=out,
        )
    total = len(result)
    print(f"{total} solutions", file=out)
    limit = args.limit
    for number, row in enumerate(result):
        if limit and number >= limit:
            break
        rendered = ", ".join(
            f"?{name}={value}" for name, value in row.items()
        )
        print(f"  {rendered}", file=out)
    if limit and total > limit:
        print(f"  ... ({total - limit} more)", file=out)


def cmd_query(args, out) -> int:
    db = Database.from_ntriples(
        Path(args.data), profile=_execution_profile(args)
    )
    return _run_session_query(db, args, out)


def cmd_db(args, out) -> int:
    from repro.storage import SnapshotReader, write_snapshot

    if args.db_command == "build":
        from repro.graph.io import load_ntriples

        db = load_ntriples(Path(args.data))
        kwargs = {}
        if args.cold_threshold is not None:
            kwargs["cold_threshold"] = args.cold_threshold
        if args.shards is not None:
            kwargs["shards"] = args.shards
        report = write_snapshot(db, args.out, **kwargs)
        sharded = (
            f" across {report.n_shards} shards" if report.n_shards else ""
        )
        print(
            f"wrote {report.path} ({report.file_bytes} bytes{sharded}): "
            f"{report.n_triples} triples, {report.n_nodes} nodes, "
            f"{report.n_predicates} predicates; "
            f"{report.n_hot} hot / {report.n_cold} cold labels "
            f"in {report.elapsed:.3f}s",
            file=out,
        )
        return 0

    if args.db_command == "compact":
        from repro.graph.io import load_ntriples

        db = Database.edit(Path(args.snapshot))
        try:
            n_added = n_retracted = 0
            if args.add:
                n_added = db.add(load_ntriples(Path(args.add)).triples())
            if args.retract:
                n_retracted = db.retract(
                    load_ntriples(Path(args.retract)).triples()
                )
            kwargs = {}
            if args.cold_threshold is not None:
                kwargs["cold_threshold"] = args.cold_threshold
            report = db.compact(args.out, **kwargs)
        finally:
            db.close()
        print(
            f"applied +{n_added}/-{n_retracted} triples to "
            f"{args.snapshot}; wrote {report.path} "
            f"({report.file_bytes} bytes): {report.n_triples} triples, "
            f"{report.n_nodes} nodes, {report.n_predicates} predicates "
            f"in {report.elapsed:.3f}s",
            file=out,
        )
        return 0

    if args.db_command == "verify":
        import json as json_module

        with SnapshotReader(Path(args.snapshot)) as reader:
            report = reader.verify()
        if args.json_out:
            print(json_module.dumps(report.to_dict(), indent=2), file=out)
            return 0 if report.ok else 1
        bar = (
            "CRC32C" if report.checksummed
            else "structural only (v1 carries no checksums)"
        )
        print(
            f"{report.path}: format v{report.version}, "
            f"integrity bar {bar}",
            file=out,
        )
        for section in report.sections:
            detail = f" ({section.detail})" if section.detail else ""
            print(f"  {section.status:7s} {section.section}{detail}",
                  file=out)
        if report.ok:
            print(f"ok: all {len(report.sections)} sections verified",
                  file=out)
            return 0
        print(
            f"error: {report.n_corrupt} corrupt section(s): "
            + ", ".join(report.corrupt_sections()),
            file=sys.stderr,
        )
        return 1

    if args.db_command == "info":
        import json as json_module

        with SnapshotReader(Path(args.snapshot)) as reader:
            info = reader.info()
            if args.json_out:
                from repro.obs.metrics import registry

                payload = info.to_dict()
                payload["metrics"] = registry().snapshot()
                print(json_module.dumps(payload, indent=2), file=out)
                return 0
            from repro.bench import render_table

            print(
                f"{info.path}: {info.file_bytes} bytes, "
                f"{info.n_triples} triples, {info.n_nodes} nodes, "
                f"{info.n_predicates} predicates "
                f"({info.n_hot} hot / {info.n_cold} cold)",
                file=out,
            )
            checksums = (
                "per-section CRC32C" if info.checksummed
                else "none (pre-checksum format; `db verify` falls "
                     "back to structural checks)"
            )
            layout = (
                f", {info.n_shards} payload shards" if info.n_shards else ""
            )
            print(
                f"format: v{info.version}, checksums: {checksums}{layout}",
                file=out,
            )
            if info.labels:
                # Budget-sizing guidance for `db query --budget` /
                # ExecutionProfile(residency_budget=...): what full
                # promotion would pin resident, and the largest single
                # label (a budget below it still works — the LRU pass
                # demotes down to zero resident at query boundaries —
                # but every query re-materializes that label).
                full = sum(i.dense_bytes for i in info.labels)
                largest = max(info.labels, key=lambda i: i.dense_bytes)
                print(
                    f"residency budget guide: ~{full} B fully "
                    f"promoted; largest label {largest.label!r} "
                    f"~{largest.dense_bytes} B",
                    file=out,
                )
            print(
                render_table(
                    ["Label", "Tier", "Edges", "Disk", "Dense", "Ratio"],
                    (
                        [
                            i.label,
                            "cold" if i.encoding == "gap" else "hot",
                            str(i.n_edges),
                            str(i.payload_bytes),
                            str(i.dense_bytes),
                            (
                                f"{i.payload_bytes / i.dense_bytes:.2f}"
                                if i.dense_bytes else "1.00"
                            ),
                        ]
                        for i in info.labels
                    ),
                ),
                file=out,
            )
        return 0

    # db query: the cached open means repeated invocations in one
    # process share the mmap, the tiered view, and the join-engine
    # store instead of rebuilding everything per query.
    db = Database.open(
        Path(args.snapshot), profile=_execution_profile(args)
    )
    code = _run_session_query(db, args, out)
    residency = db.stats().residency
    budget = (
        f", budget {residency.residency_budget} B"
        if residency.residency_budget is not None else ""
    )
    print(
        f"residency: {residency.hot_labels} hot, "
        f"{residency.cold_labels} cold, "
        f"{residency.promotions} promoted, "
        f"{residency.demotions} demoted "
        f"({residency.resident_bytes} B resident vs "
        f"{residency.on_disk_bytes} B on disk{budget})",
        file=out,
    )
    return code


def cmd_simulate(args, out) -> int:
    db = Database.from_ntriples(
        Path(args.data),
        profile=ExecutionProfile(kernel=args.kernel),
    )
    outcome = db.simulate(_read_query(args.query))
    for branch in outcome.branches:
        if len(outcome.branches) > 1:
            print(f"-- union branch {branch.index} --", file=out)
        print("system of inequalities:", file=out)
        for line in branch.soi.splitlines():
            print(f"  {line}", file=out)
        print(
            f"fixpoint: {branch.report.rounds} rounds, "
            f"{branch.report.evaluations} evaluations, "
            f"{branch.report.elapsed:.4f}s",
            file=out,
        )
        for variable, names in branch.candidates.items():
            shown = list(names)
            if args.limit and len(shown) > args.limit:
                extra = f" ... ({len(shown) - args.limit} more)"
                shown = shown[: args.limit]
            else:
                extra = ""
            print(f"  ?{variable}: {shown}{extra}", file=out)
    return 0


def cmd_ask(args, out) -> int:
    db = Database.from_ntriples(
        Path(args.data), profile=_execution_profile(args)
    )
    answer = db.ask(_read_query(args.query))
    print("yes" if answer else "no", file=out)
    return 0


def cmd_explain(args, out) -> int:
    db = Database.from_ntriples(
        Path(args.data), profile=_execution_profile(args, default_mode="auto")
    )
    print(db.explain(_read_query(args.query)), file=out)
    return 0


def cmd_bench(args, out) -> int:
    if args.json_out is not None and args.table not in (
        "kernels", "storage", "updates"
    ):
        print(
            "error: --json only applies to "
            "`bench kernels`/`bench storage`/`bench updates`",
            file=sys.stderr,
        )
        return 2
    if args.table != "kernels" and (
        args.repeats is not None
        or args.compare_to is not None
        or args.workers is not None
    ):
        print(
            "error: --repeats/--compare/--workers only apply to "
            "`bench kernels`",
            file=sys.stderr,
        )
        return 2
    if (
        args.table == "kernels"
        and args.kernel is not None
        and args.compare_to is not None
    ):
        # A single-kernel run would report every baseline row of the
        # other kernels as dropped (exit 3 by design); comparing only
        # makes sense over the full matrix.
        print(
            "error: --kernel cannot be combined with --compare "
            "(the baseline covers every kernel)",
            file=sys.stderr,
        )
        return 2

    if args.table == "kernels":
        # `bench kernels` runs each kernel itself (restricted by
        # --kernel inside _run_bench_table); the process-wide switch
        # is for the other tables.
        return _run_bench_table(args, out)
    kernel_scope = (
        use_kernel(args.kernel) if args.kernel is not None
        else contextlib.nullcontext()
    )
    with kernel_scope:
        return _run_bench_table(args, out)


def _run_bench_table(args, out) -> int:
    from repro.bench import (
        render_engine_table,
        render_hypothesis,
        render_iterations,
        render_table2,
        render_table3,
        run_engine_table,
        run_hhk_hypothesis,
        run_iteration_study,
        run_table2,
        run_table3,
    )

    if args.table == "table2":
        print(render_table2(run_table2()), file=out)
    elif args.table == "table3":
        print(render_table3(run_table3()), file=out)
    elif args.table == "table4":
        print(render_engine_table(run_engine_table("rdfox-like"),
                                  "rdfox-like"), file=out)
    elif args.table == "table5":
        print(render_engine_table(run_engine_table("virtuoso-like"),
                                  "virtuoso-like"), file=out)
    elif args.table == "iterations":
        print(render_iterations(run_iteration_study()), file=out)
    elif args.table == "kernels":
        from repro.bench import (
            kernel_bench_summary,
            render_kernel_bench,
            run_kernel_bench,
            write_bench_json,
        )
        from repro.bench.runner import (
            DEFAULT_DBPEDIA_SCALE,
            DEFAULT_LUBM_UNIVERSITIES,
        )

        baseline = None
        if args.compare_to:
            # Load and sanity-check the baseline *before* the
            # multi-minute benchmark run, so a typo'd path or mangled
            # file fails in milliseconds, not after the bench.
            import json as json_module

            try:
                baseline = json_module.loads(
                    Path(args.compare_to).read_text()
                )
            except json_module.JSONDecodeError as error:
                print(
                    f"error: baseline {args.compare_to} is not valid "
                    f"JSON: {error}",
                    file=sys.stderr,
                )
                return 2
            if baseline.get("schema") != "repro-bench/v1":
                print(
                    "error: baseline schema "
                    f"{baseline.get('schema')!r} is not repro-bench/v1",
                    file=sys.stderr,
                )
                return 2

        rows = run_kernel_bench(
            repeats=3 if args.repeats is None else args.repeats,
            kernels=None if args.kernel is None else [args.kernel],
            workers=args.workers,
        )
        print(render_kernel_bench(rows), file=out)
        scaled = [
            row.t_solve / row.t_workers
            for row in rows
            if row.t_workers is not None and row.t_workers > 0
        ]
        scaled_b = [
            row.t_solve / row.t_workers
            for row in rows
            if row.t_workers is not None and row.t_workers > 0
            and row.dataset == "dbpedia"
        ]
        if scaled:
            def _geo(values):
                product = 1.0
                for value in values:
                    product *= value
                return product ** (1.0 / len(values))

            b_part = (
                f", {_geo(scaled_b):.2f}x on B-queries" if scaled_b else ""
            )
            print(
                f"parallel scaling at --workers {args.workers}: "
                f"geomean {_geo(scaled):.2f}x{b_part} "
                f"({len(scaled)} queries)",
                file=out,
            )
        summary = kernel_bench_summary(rows)
        kernels_run = summary["kernels"]
        if "packed" in kernels_run and "reference" in kernels_run:
            print(
                "geomean speedup (reference/packed) "
                f"{summary['geomean_speedup']:.2f}x, "
                f"{summary['n_speedup_ge_3x']}/{summary['n_queries']} "
                "queries >= 3x, fixpoints identical: "
                f"{summary['fixpoints_identical']}",
                file=out,
            )
        batched = summary.get("batched")
        if batched:
            def _x(value):
                return "n/a" if value is None else f"{value:.2f}x"

            print(
                "batched vs packed: geomean "
                f"{_x(batched['geomean_vs_packed'])} overall, "
                f"{_x(batched['geomean_vs_packed_b_queries'])} on "
                "B-queries, faster on "
                f"{batched['n_faster_than_packed']}/"
                f"{summary['n_queries']} "
                f"(vs reference "
                f"{_x(batched['geomean_vs_reference'])})",
                file=out,
            )
        if args.json_out:
            write_bench_json(
                args.json_out, rows,
                lubm_universities=DEFAULT_LUBM_UNIVERSITIES,
                dbpedia_scale=DEFAULT_DBPEDIA_SCALE,
            )
            print(f"wrote {args.json_out}", file=out)
        if baseline is not None:
            from repro.bench import (
                compare_with_baseline,
                kernel_aggregate_regressions,
                render_bench_compare,
            )

            comparisons, unmatched = compare_with_baseline(rows, baseline)
            print(f"baseline: {args.compare_to}", file=out)
            print(render_bench_compare(comparisons, unmatched), file=out)
            diverged = [c for c in comparisons if not c.fixpoint_equal]
            if diverged:
                # A changed fixpoint is a correctness break, strictly
                # worse than any slowdown — always gate on it.
                print(
                    "error: fixpoint mass diverged from baseline for "
                    + ", ".join(f"{c.query}/{c.kernel}" for c in diverged),
                    file=sys.stderr,
                )
                return EXIT_REGRESSION
            dropped = [u for u in unmatched if "(baseline only)" in u]
            if dropped:
                # A query the baseline measured but this run did not:
                # a rename/removal must not silently hide its numbers.
                print(
                    "error: baseline queries missing from this run: "
                    + ", ".join(dropped),
                    file=sys.stderr,
                )
                return EXIT_REGRESSION
            aggregate = kernel_aggregate_regressions(comparisons)
            if aggregate:
                # Sub-ms rows are not gated one by one (their minima
                # are noise-bound); a kernel whose *geomean* is still
                # over the bar after drift normalization slowed down
                # systematically, and that gates.
                print(
                    "error: kernel-wide slowdown vs baseline: "
                    + ", ".join(
                        f"{kernel} {g:.2f}x"
                        for kernel, g in aggregate.items()
                    ),
                    file=sys.stderr,
                )
                return EXIT_REGRESSION
            if any(c.is_regression() for c in comparisons):
                return EXIT_REGRESSION
    elif args.table == "updates":
        from repro.bench import (
            render_updates_bench,
            run_updates_bench,
            write_updates_bench_json,
        )

        result = run_updates_bench()
        print(render_updates_bench(result), file=out)
        if args.json_out:
            write_updates_bench_json(args.json_out, result)
            print(f"wrote {args.json_out}", file=out)
        if not result.answers_all_equal:
            print(
                "error: incremental answers differ from cold-solve "
                "answers",
                file=sys.stderr,
            )
            return 1
    elif args.table == "storage":
        from repro.bench import (
            render_storage_bench,
            run_storage_bench,
            write_storage_bench_json,
        )

        result = run_storage_bench()
        print(render_storage_bench(result), file=out)
        if args.json_out:
            write_storage_bench_json(args.json_out, result)
            print(f"wrote {args.json_out}", file=out)
        if not result.answers_all_equal:
            print(
                "error: snapshot answers differ from in-memory answers",
                file=sys.stderr,
            )
            return 1
        if not result.cold_open_lazy:
            # The query-ready open must not decode adjacency: a fill
            # or promotion at open is the full-edge-scan regression
            # the lazy join indexes exist to prevent.
            print(
                "error: cold open was not lazy "
                f"({result.cold_open_join_fills} join fills, "
                f"{result.cold_open_promotions} promotions before any "
                "query)",
                file=sys.stderr,
            )
            return 1
    else:
        print(render_hypothesis(run_hhk_hypothesis()), file=out)
    return 0


def cmd_serve(args, out) -> int:
    import signal

    from repro.serve import DEFAULT_MAX_BODY, DEFAULT_QUANTUM_MS
    from repro.serve.server import ReproServer, ServeConfig

    path = Path(args.data)
    profile = _execution_profile(args, default_mode="auto")
    if path.suffix == ".nt":
        db = Database.from_ntriples(path, profile=profile)
    else:
        db = Database.open(path, profile=profile)

    config = ServeConfig(
        host=args.host,
        port=args.port,
        quantum_ms=(
            DEFAULT_QUANTUM_MS if args.quantum is None else args.quantum
        ),
        deadline_ms=args.deadline,
        max_body_bytes=(
            DEFAULT_MAX_BODY if args.max_body is None else args.max_body
        ),
        trace_out=args.trace_out,
    )
    server = ReproServer(db, config)
    print(
        f"serving {path} at {server.url} "
        f"(quantum {config.quantum_ms:g} ms, kind {db.backend.kind}); "
        "SIGTERM or Ctrl-C drains and exits",
        file=out,
    )

    def _drain(signum, frame) -> None:
        # shutdown() must not run on the serve_forever thread — hand
        # the stop to a helper so the handler returns immediately.
        threading.Thread(
            target=server.stop, name="repro-serve-drain", daemon=True
        ).start()

    previous = {
        signal.SIGTERM: signal.signal(signal.SIGTERM, _drain),
        signal.SIGINT: signal.signal(signal.SIGINT, _drain),
    }
    try:
        server.serve_forever()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        server.stop()
        db.close()
    print("drained: all in-flight requests finished", file=out)
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": cmd_generate,
        "query": cmd_query,
        "simulate": cmd_simulate,
        "ask": cmd_ask,
        "explain": cmd_explain,
        "bench": cmd_bench,
        "db": cmd_db,
        "serve": cmd_serve,
    }
    try:
        return handlers[args.command](args, out)
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except DeadlineExceededError as error:
        print(f"error: deadline exceeded: {error}", file=sys.stderr)
        return EXIT_DEADLINE
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
